//! Phase 3: the experiment runner.
//!
//! "Given a graph and the number of threads, run each algorithm using each
//! software package multiple times" (§III, item 3). The runner owns every
//! wall clock: engines only report phase boundaries, so all systems are
//! timed identically — the fairness property Table I shows Graphalytics
//! lacking. Rooted algorithms run once per sampled root (32 by default);
//! PageRank "is simply run 32 times" (§III-B); the Graphalytics-only
//! kernels run once.

use crate::dataset::Dataset;
use crate::registry::EngineKind;
use crate::supervise::{supervise_trial, QuarantineBook, SupervisorConfig, TrialOutcome};
use crate::{csvio, logs};
use epg_engine_api::{Algorithm, Phase, RunOutput, RunParams, SsspKernel};
use epg_graph::VertexId;
use epg_parallel::ThreadPool;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

#[cfg(feature = "trace")]
use epg_engine_api::{Recorder, RecorderCtx, RunRecorder, TraceEvent};
#[cfg(feature = "trace")]
use std::sync::Arc;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Engines to run (engines that don't support an algorithm are
    /// skipped, as in the paper's figures).
    pub engines: Vec<EngineKind>,
    /// Algorithms to run.
    pub algorithms: Vec<Algorithm>,
    /// Thread-pool size for real execution.
    pub threads: usize,
    /// Trials per root (Figs. 5-6 use 4 trials; everything else 1).
    pub trials: u32,
    /// Cap on roots / PageRank repetitions (None = the dataset's 32).
    pub max_roots: Option<usize>,
    /// Load inputs through the homogenized files in `work_dir` (the real
    /// phase-1 path) instead of in-memory edge lists.
    pub use_files: bool,
    /// Where homogenized files and logs go.
    pub work_dir: Option<PathBuf>,
    /// Trial supervision policy: per-trial budget, retries, quarantine.
    pub supervisor: SupervisorConfig,
    /// SSSP kernel override for engines exposing the raw-speed tier
    /// (currently GAP). `None` keeps each engine's paper default.
    pub sssp_kernel: Option<SsspKernel>,
    /// Deterministic fault plans, keyed by engine: the engine is wrapped
    /// in a [`epg_engine_api::FaultyEngine`] decorator before running.
    #[cfg(feature = "fault-inject")]
    pub fault_plans: Vec<(EngineKind, epg_engine_api::FaultPlan)>,
}

impl ExperimentConfig {
    /// A small default: every engine, the core trio, one thread.
    pub fn new() -> ExperimentConfig {
        ExperimentConfig {
            engines: EngineKind::ALL.to_vec(),
            algorithms: Algorithm::CORE.to_vec(),
            threads: 1,
            trials: 1,
            max_roots: None,
            use_files: false,
            work_dir: None,
            supervisor: SupervisorConfig::default(),
            sssp_kernel: None,
            #[cfg(feature = "fault-inject")]
            fault_plans: Vec::new(),
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::new()
    }
}

/// One timed observation — a row of the phase-4 CSV.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Engine.
    pub engine: EngineKind,
    /// Dataset name.
    pub dataset: String,
    /// Algorithm (None for the load/construct phases, which are shared).
    pub algorithm: Option<Algorithm>,
    /// Thread count.
    pub threads: usize,
    /// Which phase this row times.
    pub phase: Phase,
    /// Root vertex for rooted runs.
    pub root: Option<VertexId>,
    /// Trial index.
    pub trial: u32,
    /// Measured seconds.
    pub seconds: f64,
    /// PageRank iterations, when applicable.
    pub iterations: Option<u32>,
    /// How the trial ended; only `Ok` rows carry a performance sample.
    pub outcome: TrialOutcome,
    /// SSSP kernel the row ran under (SSSP run rows on kernel-aware
    /// engines only).
    pub kernel: Option<SsspKernel>,
}

/// A kernel invocation's full output, kept for the machine model.
pub struct RunInfo {
    /// Engine.
    pub engine: EngineKind,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Root, for rooted algorithms.
    pub root: Option<VertexId>,
    /// Measured kernel seconds.
    pub seconds: f64,
    /// The engine's output (result + counters + trace).
    pub output: RunOutput,
}

/// Structured telemetry captured for one engine/algorithm pair (first
/// root, first trial) when the `trace` feature is enabled.
pub struct TraceBundle {
    /// Engine.
    pub engine: EngineKind,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Dataset name.
    pub dataset: String,
    /// The recorded event stream (phase spans, iterations, regions,
    /// counter deltas, worker spans, allocation high-water marks).
    pub events: Vec<epg_engine_api::TraceEvent>,
    /// Events lost to the recorder's ring-buffer cap (oldest dropped).
    pub dropped: u64,
}

/// Everything an experiment produces.
pub struct ExperimentResult {
    /// Flat timing records (phase 4 rows).
    pub records: Vec<RunRecord>,
    /// Full outputs for trace-based analysis.
    pub runs: Vec<RunInfo>,
    /// Telemetry bundles; always empty without the `trace` feature.
    pub traces: Vec<TraceBundle>,
}

impl ExperimentResult {
    /// Kernel-time samples for one engine/algorithm pair — completed
    /// trials only; DNF rows are counted by [`Self::dnf_count`].
    pub fn run_times(&self, engine: EngineKind, algo: Algorithm) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| {
                r.engine == engine
                    && r.algorithm == Some(algo)
                    && r.phase == Phase::Run
                    && r.outcome == TrialOutcome::Ok
            })
            .map(|r| r.seconds)
            .collect()
    }

    /// Did-not-finish trial count for one engine/algorithm pair.
    pub fn dnf_count(&self, engine: EngineKind, algo: Algorithm) -> usize {
        self.records
            .iter()
            .filter(|r| {
                r.engine == engine
                    && r.algorithm == Some(algo)
                    && r.phase == Phase::Run
                    && r.outcome.is_dnf()
            })
            .count()
    }

    /// Per-outcome row counts over all run-phase records, in label order.
    pub fn outcome_counts(&self) -> Vec<(TrialOutcome, usize)> {
        [TrialOutcome::Ok, TrialOutcome::Timeout, TrialOutcome::Panicked, TrialOutcome::Quarantined]
            .into_iter()
            .map(|o| {
                (o, self.records.iter().filter(|r| r.phase == Phase::Run && r.outcome == o).count())
            })
            .collect()
    }

    /// File-read ("ReadFile" phase) samples for one engine at one thread
    /// count — feeds the ingest-phase table's read/build speedup column
    /// when the result spans a thread sweep.
    pub fn read_times_at(&self, engine: EngineKind, threads: usize) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.engine == engine && r.phase == Phase::ReadFile && r.threads == threads)
            .map(|r| r.seconds)
            .collect()
    }

    /// Construction-time samples for one engine at one thread count.
    pub fn construct_times_at(&self, engine: EngineKind, threads: usize) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.engine == engine && r.phase == Phase::Construct && r.threads == threads)
            .map(|r| r.seconds)
            .collect()
    }

    /// The distinct thread counts present in the records, ascending.
    pub fn thread_counts(&self) -> Vec<usize> {
        let mut t: Vec<usize> = self.records.iter().map(|r| r.threads).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Construction-time samples for one engine (empty when fused).
    pub fn construct_times(&self, engine: EngineKind) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| r.engine == engine && r.phase == Phase::Construct)
            .map(|r| r.seconds)
            .collect()
    }

    /// PageRank iteration counts per engine.
    pub fn pr_iterations(&self, engine: EngineKind) -> Vec<u32> {
        self.records
            .iter()
            .filter(|r| r.engine == engine && r.algorithm == Some(Algorithm::PageRank))
            .filter_map(|r| r.iterations)
            .collect()
    }

    /// Serializes all records as the phase-4 CSV.
    pub fn to_csv(&self) -> String {
        let mut buf = Vec::new();
        csvio::write_row(
            &mut buf,
            &[
                "engine",
                "dataset",
                "algorithm",
                "threads",
                "phase",
                "root",
                "trial",
                "seconds",
                "iterations",
                "outcome",
                "kernel",
            ],
        )
        .unwrap();
        for r in &self.records {
            csvio::write_row(
                &mut buf,
                &[
                    r.engine.name(),
                    &r.dataset,
                    r.algorithm.map_or("", |a| a.abbrev()),
                    &r.threads.to_string(),
                    r.phase.label(),
                    &r.root.map_or(String::new(), |x| x.to_string()),
                    &r.trial.to_string(),
                    &format!("{:.9}", r.seconds),
                    &r.iterations.map_or(String::new(), |x| x.to_string()),
                    r.outcome.label(),
                    r.kernel.map_or("", |k| k.name()),
                ],
            )
            .unwrap();
        }
        String::from_utf8(buf).expect("CSV is UTF-8")
    }
}

/// Runs a full experiment over one dataset.
pub fn run_experiment(cfg: &ExperimentConfig, ds: &Dataset) -> ExperimentResult {
    let pool = ThreadPool::new(cfg.threads.max(1));
    let mut records = Vec::new();
    let mut runs = Vec::new();
    let mut quarantine = QuarantineBook::new();
    #[cfg_attr(not(feature = "trace"), allow(unused_mut))]
    let mut traces: Vec<TraceBundle> = Vec::new();

    // Homogenized files, if the file path is requested.
    let file_dir = cfg.use_files.then(|| {
        let dir = cfg.work_dir.clone().unwrap_or_else(|| std::env::temp_dir().join("epg-work"));
        ds.write_files_parallel(&dir, &pool).expect("failed to write homogenized files");
        dir
    });

    for &kind in &cfg.engines {
        #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
        let mut engine = kind.create_with_sssp_kernel(cfg.sssp_kernel);
        // The kernel label is only meaningful where the knob is threaded
        // through (GAP's raw-speed tier).
        let kernel_label = (kind == EngineKind::Gap).then(|| cfg.sssp_kernel.unwrap_or_default());
        #[cfg(feature = "fault-inject")]
        if let Some((_, plan)) = cfg.fault_plans.iter().find(|(k, _)| *k == kind) {
            engine = Box::new(epg_engine_api::FaultyEngine::new(engine, plan.clone()));
        }
        // ---- Phase 1: read input ----
        let t0 = Instant::now();
        if let Some(dir) = &file_dir {
            engine
                .load_file(&ds.input_path_for(dir, kind), &pool)
                .expect("engine failed to load homogenized file");
        } else {
            engine.load_edge_list(ds.edges_for(kind));
        }
        let read_s = t0.elapsed().as_secs_f64();
        records.push(RunRecord {
            engine: kind,
            dataset: ds.name.clone(),
            algorithm: None,
            threads: cfg.threads,
            phase: Phase::ReadFile,
            root: None,
            trial: 0,
            seconds: read_s,
            iterations: None,
            outcome: TrialOutcome::Ok,
            kernel: None,
        });

        // ---- Phase 2: construct (recorded only when separable) ----
        let t0 = Instant::now();
        engine.construct(&pool);
        let construct_s = t0.elapsed().as_secs_f64();
        if engine.separable_construction() {
            records.push(RunRecord {
                engine: kind,
                dataset: ds.name.clone(),
                algorithm: None,
                threads: cfg.threads,
                phase: Phase::Construct,
                root: None,
                trial: 0,
                seconds: construct_s,
                iterations: None,
                outcome: TrialOutcome::Ok,
                kernel: None,
            });
        } else {
            // Fused engines build during the read. In file-based runs that
            // happens inside load_file; in in-memory runs the build work
            // lands in construct(), so fold it into the ReadFile row to
            // keep the fused semantics (one combined number, §III-B).
            if let Some(read_row) =
                records.iter_mut().rev().find(|r| r.engine == kind && r.phase == Phase::ReadFile)
            {
                read_row.seconds += construct_s;
            }
        }

        // ---- Phase 3: run kernels ----
        for &algo in &cfg.algorithms {
            if !engine.supports(algo) {
                continue;
            }
            // Unlike Graphalytics (which reports N/A for SSSP on unweighted
            // graphs — Table I), the framework runs SSSP with unit weights:
            // "we need not modify the graph and can use the same root
            // vertices from BFS" (§III-D), and Fig. 8 shows SSSP bars for
            // the unweighted cit-Patents dataset.
            let reps: Vec<Option<VertexId>> = if algo.is_rooted() {
                let mut roots: Vec<Option<VertexId>> = ds.roots.iter().map(|&r| Some(r)).collect();
                if let Some(cap) = cfg.max_roots {
                    roots.truncate(cap);
                }
                roots
            } else if algo == Algorithm::PageRank {
                let n = cfg.max_roots.unwrap_or(crate::dataset::NUM_ROOTS);
                vec![None; n]
            } else {
                vec![None]
            };
            let mut log_text = String::new();
            let cell = format!("{}/{}", kind.name(), algo.abbrev());
            for (ri, &root) in reps.iter().enumerate() {
                for trial in 0..cfg.trials {
                    // A cell that failed `quarantine_after` trials in a
                    // row is never scheduled again: the remaining reps
                    // become explicit Quarantined DNF rows (zero cost).
                    if quarantine.is_quarantined(&cell, cfg.supervisor.quarantine_after) {
                        records.push(RunRecord {
                            engine: kind,
                            dataset: ds.name.clone(),
                            algorithm: Some(algo),
                            threads: cfg.threads,
                            phase: Phase::Run,
                            root,
                            trial,
                            seconds: 0.0,
                            iterations: None,
                            outcome: TrialOutcome::Quarantined,
                            kernel: (algo == Algorithm::Sssp).then_some(kernel_label).flatten(),
                        });
                        continue;
                    }
                    // Record telemetry for the first observation of each
                    // engine×algorithm pair only: attaching the recorder to
                    // the pool has measurable cost, and one run per pair is
                    // what the summarizer and the machine-model replay need.
                    #[cfg(feature = "trace")]
                    let tracer = (ri == 0 && trial == 0).then(|| {
                        let rec = Arc::new(RunRecorder::new());
                        // Read/construct happened before any recorder
                        // existed; reconstruct their spans from the wall
                        // clocks so the trace shows all three phases.
                        let mut at = 0u64;
                        rec.record(TraceEvent::PhaseStart { phase: "read".into(), at_ns: at });
                        at += (read_s * 1e9) as u64;
                        rec.record(TraceEvent::PhaseEnd { phase: "read".into(), at_ns: at });
                        if engine.separable_construction() {
                            rec.record(TraceEvent::PhaseStart {
                                phase: "construct".into(),
                                at_ns: at,
                            });
                            at += (construct_s * 1e9) as u64;
                            rec.record(TraceEvent::PhaseEnd {
                                phase: "construct".into(),
                                at_ns: at,
                            });
                        }
                        rec.record(TraceEvent::PhaseStart { phase: "run".into(), at_ns: at });
                        pool.set_recorder(Some(rec.clone() as Arc<dyn Recorder>));
                        (rec, at)
                    });
                    let params = RunParams::new(&pool, root);
                    #[cfg(feature = "trace")]
                    let params = {
                        let mut p = params;
                        if let Some((rec, _)) = &tracer {
                            p.recorder = RecorderCtx::new(&**rec);
                        }
                        p
                    };
                    let report =
                        supervise_trial(&pool, &cfg.supervisor, || engine.run(algo, &params), None);
                    quarantine.record(&cell, report.outcome);
                    let secs = report.seconds;
                    #[cfg(feature = "trace")]
                    if let Some((rec, at)) = tracer {
                        pool.set_recorder(None);
                        rec.record(TraceEvent::PhaseEnd {
                            phase: "run".into(),
                            at_ns: at + (secs * 1e9) as u64,
                        });
                        rec.record(TraceEvent::TrialOutcome {
                            outcome: report.outcome.label().into(),
                            attempts: report.attempts,
                        });
                        if let Some(dir) = &file_dir {
                            let log_dir = dir.join("logs");
                            std::fs::create_dir_all(&log_dir).ok();
                            let path = log_dir.join(format!(
                                "{}_{}_{}.trace.jsonl",
                                kind.name(),
                                algo.abbrev(),
                                ds.name
                            ));
                            if let Ok(mut f) = std::fs::File::create(path) {
                                let _ = f.write_all(rec.to_jsonl().as_bytes());
                            }
                        }
                        traces.push(TraceBundle {
                            engine: kind,
                            algorithm: algo,
                            dataset: ds.name.clone(),
                            events: rec.events(),
                            dropped: rec.dropped(),
                        });
                    }
                    let iterations = report.output.as_ref().and_then(|o| o.result.iterations());
                    records.push(RunRecord {
                        engine: kind,
                        dataset: ds.name.clone(),
                        algorithm: Some(algo),
                        threads: cfg.threads,
                        phase: Phase::Run,
                        root,
                        trial,
                        seconds: secs,
                        iterations,
                        outcome: report.outcome,
                        kernel: (algo == Algorithm::Sssp).then_some(kernel_label).flatten(),
                    });
                    if ri == 0 && trial == 0 {
                        // Emit this engine's log dialect for the parse phase.
                        let mut entries =
                            vec![logs::LogEntry { phase: Phase::ReadFile, seconds: read_s }];
                        if engine.separable_construction() {
                            entries.push(logs::LogEntry {
                                phase: Phase::Construct,
                                seconds: construct_s,
                            });
                        }
                        entries.push(logs::LogEntry { phase: Phase::Run, seconds: secs });
                        log_text = logs::render_log(
                            engine.log_style(),
                            &format!("{} on {}", algo.abbrev(), ds.name),
                            &entries,
                        );
                    }
                    // Only completed runs feed the machine model and the
                    // cross-engine result checks; a timed-out run's partial
                    // counters live on in its (DNF) record.
                    if report.outcome == TrialOutcome::Ok {
                        if let Some(output) = report.output {
                            runs.push(RunInfo {
                                engine: kind,
                                algorithm: algo,
                                root,
                                seconds: secs,
                                output,
                            });
                        }
                    }
                }
            }
            if let Some(dir) = &file_dir {
                let log_dir = dir.join("logs");
                std::fs::create_dir_all(&log_dir).ok();
                let path =
                    log_dir.join(format!("{}_{}_{}.log", kind.name(), algo.abbrev(), ds.name));
                if let Ok(mut f) = std::fs::File::create(path) {
                    let _ = f.write_all(log_text.as_bytes());
                }
            }
        }
    }
    ExperimentResult { records, runs, traces }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_generator::GraphSpec;

    fn tiny_dataset() -> Dataset {
        Dataset::from_spec(&GraphSpec::Kronecker { scale: 7, edge_factor: 8, weighted: true }, 11)
    }

    #[test]
    fn runs_cover_support_matrix() {
        let ds = tiny_dataset();
        let mut cfg = ExperimentConfig::new();
        cfg.max_roots = Some(2);
        let res = run_experiment(&cfg, &ds);
        // PowerGraph has no BFS rows; Graph500 has only BFS rows.
        assert!(res.run_times(EngineKind::PowerGraph, Algorithm::Bfs).is_empty());
        assert!(!res.run_times(EngineKind::PowerGraph, Algorithm::Sssp).is_empty());
        assert!(res.run_times(EngineKind::Graph500, Algorithm::Sssp).is_empty());
        assert_eq!(res.run_times(EngineKind::Gap, Algorithm::Bfs).len(), 2);
        assert_eq!(res.run_times(EngineKind::Gap, Algorithm::PageRank).len(), 2);
    }

    #[test]
    fn fused_engines_report_no_construct_time() {
        let ds = tiny_dataset();
        let mut cfg = ExperimentConfig::new();
        cfg.max_roots = Some(1);
        cfg.engines = vec![EngineKind::Gap, EngineKind::GraphBig, EngineKind::PowerGraph];
        cfg.algorithms = vec![Algorithm::PageRank];
        let res = run_experiment(&cfg, &ds);
        assert_eq!(res.construct_times(EngineKind::Gap).len(), 1);
        assert!(res.construct_times(EngineKind::GraphBig).is_empty());
        assert!(res.construct_times(EngineKind::PowerGraph).is_empty());
    }

    #[test]
    fn unweighted_dataset_still_runs_sssp_with_unit_weights() {
        // Unlike Graphalytics's N/A rule, the framework runs SSSP on
        // unweighted graphs (Fig. 8 shows cit-Patents SSSP bars).
        let ds = Dataset::from_spec(
            &GraphSpec::Kronecker { scale: 7, edge_factor: 8, weighted: false },
            3,
        );
        let mut cfg = ExperimentConfig::new();
        cfg.max_roots = Some(1);
        cfg.algorithms = vec![Algorithm::Sssp];
        let res = run_experiment(&cfg, &ds);
        assert!(!res.run_times(EngineKind::Gap, Algorithm::Sssp).is_empty());
        // Unit weights: SSSP distances equal BFS levels.
        let run = res.runs.iter().find(|r| r.engine == EngineKind::Gap).unwrap();
        let epg_engine_api::AlgorithmResult::Distances(d) = &run.output.result else { panic!() };
        assert!(d.iter().all(|&x| x.is_infinite() || x.fract() == 0.0));
    }

    #[test]
    fn pr_iteration_counts_recorded_and_graphmat_largest() {
        let ds = tiny_dataset();
        let mut cfg = ExperimentConfig::new();
        cfg.max_roots = Some(1);
        cfg.algorithms = vec![Algorithm::PageRank];
        let res = run_experiment(&cfg, &ds);
        let gap = res.pr_iterations(EngineKind::Gap);
        let gm = res.pr_iterations(EngineKind::GraphMat);
        assert!(!gap.is_empty() && !gm.is_empty());
        // GraphMat's native NoChange criterion iterates at least as long
        // (Fig. 4 right panel).
        assert!(gm[0] >= gap[0], "GraphMat {} vs GAP {}", gm[0], gap[0]);
    }

    #[test]
    fn file_based_pipeline_writes_logs_and_csv() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("epg_runner_files_test");
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = ExperimentConfig::new();
        cfg.max_roots = Some(1);
        cfg.use_files = true;
        cfg.work_dir = Some(dir.clone());
        cfg.engines = vec![EngineKind::Gap, EngineKind::GraphMat];
        cfg.algorithms = vec![Algorithm::Bfs];
        let res = run_experiment(&cfg, &ds);
        assert!(dir.join("logs").read_dir().unwrap().count() >= 2);
        let csv = res.to_csv();
        let rows = crate::csvio::read_all(csv.as_bytes()).unwrap();
        assert!(rows.len() > 3);
        assert_eq!(rows[0][0], "engine");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trials_multiply_run_rows() {
        let ds = tiny_dataset();
        let mut cfg = ExperimentConfig::new();
        cfg.max_roots = Some(2);
        cfg.trials = 3;
        cfg.engines = vec![EngineKind::Gap];
        cfg.algorithms = vec![Algorithm::Bfs];
        let res = run_experiment(&cfg, &ds);
        assert_eq!(res.run_times(EngineKind::Gap, Algorithm::Bfs).len(), 6);
    }
}

#[cfg(all(test, feature = "trace"))]
mod trace_tests {
    use super::*;
    use epg_generator::GraphSpec;

    #[test]
    fn runner_captures_one_bundle_per_pair_and_writes_jsonl() {
        let ds = Dataset::from_spec(
            &GraphSpec::Kronecker { scale: 6, edge_factor: 8, weighted: false },
            5,
        );
        let dir = std::env::temp_dir().join("epg_runner_trace_test");
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = ExperimentConfig::new();
        cfg.max_roots = Some(2);
        cfg.threads = 2;
        cfg.trials = 2;
        cfg.use_files = true;
        cfg.work_dir = Some(dir.clone());
        cfg.engines = vec![EngineKind::Gap];
        cfg.algorithms = vec![Algorithm::Bfs];
        let res = run_experiment(&cfg, &ds);
        // One bundle per engine×algorithm pair (first root, first trial).
        assert_eq!(res.traces.len(), 1);
        let b = &res.traces[0];
        assert_eq!(b.dropped, 0);
        assert!(b.events.iter().any(|e| matches!(e, TraceEvent::Iteration { .. })));
        assert!(b.events.iter().any(|e| matches!(e, TraceEvent::WorkerSpan { .. })));
        assert!(b.events.iter().any(|e| matches!(e, TraceEvent::PhaseEnd { .. })));
        // The flushed file parses back to the same number of events.
        let trace_file = dir
            .join("logs")
            .read_dir()
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.to_string_lossy().ends_with(".trace.jsonl"))
            .expect("trace file written");
        let parsed = epg_trace::jsonl::parse_jsonl(&std::fs::read_to_string(trace_file).unwrap());
        assert_eq!(parsed.skipped, 0);
        assert_eq!(parsed.events.len(), b.events.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Runs the experiment once per thread count, concatenating records — the
/// §IV-B scalability protocol ("varying the number of threads from one to
/// the total number of threads available"). On a machine with real cores
/// this measures true strong scaling; the Figs. 5-6 regenerator uses it
/// under `--measure` and otherwise projects through the machine model.
pub fn run_thread_sweep(
    base: &ExperimentConfig,
    ds: &Dataset,
    thread_counts: &[usize],
) -> ExperimentResult {
    let mut records = Vec::new();
    let mut runs = Vec::new();
    let mut traces = Vec::new();
    for &threads in thread_counts {
        let cfg = ExperimentConfig { threads, ..base.clone() };
        let mut result = run_experiment(&cfg, ds);
        records.append(&mut result.records);
        runs.append(&mut result.runs);
        traces.append(&mut result.traces);
    }
    ExperimentResult { records, runs, traces }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;
    use epg_generator::GraphSpec;

    #[test]
    fn sweep_produces_rows_per_thread_count() {
        let ds = Dataset::from_spec(
            &GraphSpec::Kronecker { scale: 7, edge_factor: 8, weighted: false },
            2,
        );
        let cfg = ExperimentConfig {
            engines: vec![EngineKind::Gap],
            algorithms: vec![Algorithm::Bfs],
            max_roots: Some(1),
            ..ExperimentConfig::new()
        };
        let result = run_thread_sweep(&cfg, &ds, &[1, 2, 4]);
        for &t in &[1usize, 2, 4] {
            let rows =
                result.records.iter().filter(|r| r.threads == t && r.phase == Phase::Run).count();
            assert_eq!(rows, 1, "threads={t}");
        }
        // Results identical across thread counts (determinism check).
        let levels: Vec<_> = result
            .runs
            .iter()
            .map(|r| match &r.output.result {
                epg_engine_api::AlgorithmResult::BfsTree { level, .. } => level.clone(),
                _ => panic!(),
            })
            .collect();
        assert!(levels.windows(2).all(|w| w[0] == w[1]));
    }
}
