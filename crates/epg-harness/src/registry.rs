//! Phase 1: the engine registry.
//!
//! The original framework installs "modified, stable forks of each software
//! package to ensure homogeneity" (§III, item 1). Our engines are crates,
//! so "installation" is instantiation — but the homogeneity contract is the
//! same: every engine is constructed with the exact configuration used
//! throughout the paper.

use epg_engine_api::{Algorithm, Engine, SsspKernel};

/// The five systems of §III-C.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// GAP Benchmark Suite.
    Gap,
    /// Graph500 reference (OpenMP).
    Graph500,
    /// GraphBIG.
    GraphBig,
    /// GraphMat.
    GraphMat,
    /// PowerGraph.
    PowerGraph,
}

impl EngineKind {
    /// All engines, in the paper's listing order.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Graph500,
        EngineKind::Gap,
        EngineKind::GraphBig,
        EngineKind::GraphMat,
        EngineKind::PowerGraph,
    ];

    /// Display name (matches the paper's tables).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Gap => "GAP",
            EngineKind::Graph500 => "Graph500",
            EngineKind::GraphBig => "GraphBIG",
            EngineKind::GraphMat => "GraphMat",
            EngineKind::PowerGraph => "PowerGraph",
        }
    }

    /// Parses a display name (case-insensitive).
    pub fn from_name(s: &str) -> Option<EngineKind> {
        EngineKind::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Instantiates the engine with its paper-default configuration.
    pub fn create(self) -> Box<dyn Engine> {
        match self {
            EngineKind::Gap => Box::new(epg_engine_gap::GapEngine::new()),
            EngineKind::Graph500 => Box::new(epg_engine_graph500::Graph500Engine::new()),
            EngineKind::GraphBig => Box::new(epg_engine_graphbig::GraphBigEngine::new()),
            EngineKind::GraphMat => Box::new(epg_engine_graphmat::GraphMatEngine::new()),
            EngineKind::PowerGraph => Box::new(epg_engine_powergraph::PowerGraphEngine::new()),
        }
    }

    /// Like [`EngineKind::create`], but with an explicit SSSP kernel for
    /// engines that expose the raw-speed tier. Only GAP threads the knob
    /// through; other engines ignore it (their SSSP implementation is what
    /// the paper measured). `None` keeps the paper default (Δ-stepping).
    pub fn create_with_sssp_kernel(self, kernel: Option<SsspKernel>) -> Box<dyn Engine> {
        match (self, kernel) {
            (EngineKind::Gap, Some(k)) => {
                let mut e = epg_engine_gap::GapEngine::new();
                e.config.sssp_kernel = k;
                Box::new(e)
            }
            _ => self.create(),
        }
    }

    /// True when the engine wants the raw (directed) edge list rather than
    /// the pre-symmetrized one — Graph500 symmetrizes internally as part of
    /// its construction kernel.
    pub fn wants_raw_edges(self) -> bool {
        self == EngineKind::Graph500
    }
}

/// Engines supporting `algo`, in listing order.
pub fn engines_supporting(algo: Algorithm) -> Vec<EngineKind> {
    EngineKind::ALL.into_iter().filter(|k| k.create().supports(algo)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for k in EngineKind::ALL {
            assert_eq!(EngineKind::from_name(k.name()), Some(k));
            assert_eq!(EngineKind::from_name(&k.name().to_lowercase()), Some(k));
        }
        assert_eq!(EngineKind::from_name("Ligra"), None);
    }

    #[test]
    fn creation_matches_metadata() {
        for k in EngineKind::ALL {
            let e = k.create();
            assert_eq!(e.info().name, k.name());
        }
    }

    #[test]
    fn support_matrix_matches_paper() {
        // Fig. 2: BFS on GAP, Graph500, GraphBIG, GraphMat (no PowerGraph).
        let bfs = engines_supporting(Algorithm::Bfs);
        assert!(!bfs.contains(&EngineKind::PowerGraph));
        assert_eq!(bfs.len(), 4);
        // Fig. 3: SSSP on GAP, GraphBIG, GraphMat, PowerGraph (no Graph500).
        let sssp = engines_supporting(Algorithm::Sssp);
        assert!(!sssp.contains(&EngineKind::Graph500));
        assert_eq!(sssp.len(), 4);
        // Table I columns exist on GraphBIG / GraphMat / PowerGraph.
        for a in [Algorithm::Cdlp, Algorithm::Lcc, Algorithm::Wcc] {
            let s = engines_supporting(a);
            for k in [EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph] {
                assert!(s.contains(&k), "{a:?} missing on {k:?}");
            }
        }
    }
}
