//! Phase 4 output: a small CSV layer (RFC 4180-style quoting).

use std::io::{self, BufRead, BufReader, Read, Write};

/// Writes one CSV row, quoting fields that need it.
pub fn write_row<W: Write>(out: &mut W, fields: &[&str]) -> io::Result<()> {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        if f.contains([',', '"', '\n']) {
            out.write_all(b"\"")?;
            out.write_all(f.replace('"', "\"\"").as_bytes())?;
            out.write_all(b"\"")?;
        } else {
            out.write_all(f.as_bytes())?;
        }
    }
    out.write_all(b"\n")
}

/// Parses a single CSV line into fields.
pub fn parse_row(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() && !in_quotes => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Reads an entire CSV document into rows of fields.
pub fn read_all<R: Read>(reader: R) -> io::Result<Vec<Vec<String>>> {
    BufReader::new(reader).lines().map(|l| l.map(|line| parse_row(&line))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_roundtrip() {
        let mut buf = Vec::new();
        write_row(&mut buf, &["a", "b", "3.14"]).unwrap();
        let rows = read_all(buf.as_slice()).unwrap();
        assert_eq!(rows, vec![vec!["a", "b", "3.14"]]);
    }

    #[test]
    fn quoting_roundtrip() {
        let mut buf = Vec::new();
        write_row(&mut buf, &["with,comma", "with\"quote", "plain"]).unwrap();
        let rows = read_all(buf.as_slice()).unwrap();
        assert_eq!(rows[0], vec!["with,comma", "with\"quote", "plain"]);
    }

    #[test]
    fn empty_fields_survive() {
        let mut buf = Vec::new();
        write_row(&mut buf, &["", "x", ""]).unwrap();
        let rows = read_all(buf.as_slice()).unwrap();
        assert_eq!(rows[0], vec!["", "x", ""]);
    }

    #[test]
    fn parse_handles_quoted_commas() {
        assert_eq!(parse_row(r#"a,"b,c",d"#), vec!["a", "b,c", "d"]);
        assert_eq!(parse_row(r#""x""y",z"#), vec![r#"x"y"#, "z"]);
    }
}
