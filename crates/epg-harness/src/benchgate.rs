//! Bench regression gate: holds a candidate `epg-ingest-bench/v1` report to
//! the speedups committed in a baseline snapshot (`epg bench --json
//! --baseline BENCH_ingest.json --gate`).
//!
//! The gate compares `speedup_vs_serial` per (phase, thread count) and fails
//! when the candidate drops more than [`DEFAULT_TOLERANCE`] below the
//! baseline. Two escape hatches keep it honest rather than noisy:
//!
//! - **Single-core skip.** Speedup-vs-serial on a host with
//!   `hardware_threads < 2` measures oversubscription, not scaling, so the
//!   gate skips entirely (with a notice) instead of pretending to verify.
//! - **Oversubscription warnings.** Individual thread counts beyond either
//!   host's hardware threads (stamped `"oversubscribed"` by the bench, or
//!   inferred from the host record for older baselines) are reported as
//!   warnings and excluded from the pass/fail decision.
//!
//! Reports carry optional sections beyond the phase sweep — the
//! `"sssp_kernels"` work table (PR 8) and the `"serve"` summary written
//! by `epg serve-bench` (`epg-serve-bench/v1` reports gate through the
//! same door). A section present in the candidate but absent from an
//! older baseline snapshot is **skipped with a notice**, never failed:
//! a pre-kernel-tier `BENCH_ingest.json` stays a valid baseline.

use crate::ingestbench::{parse_json, Json, PHASES, SCHEMA};
use crate::servebench::SCHEMA as SERVE_SCHEMA;
use std::fmt::Write as _;

/// How far a candidate speedup may fall below the baseline before the gate
/// fails. Absolute slack on the speedup ratio: medians of a few trials on
/// shared CI hardware jitter, and a 4× kernel that measures 3.9× is not a
/// regression. A real fallback to a contended kernel (4× → 0.3×) clears
/// this bar by an order of magnitude.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// One measured thread count within a phase.
#[derive(Clone, Debug)]
pub struct PerThread {
    /// Thread count of the measurement.
    pub threads: usize,
    /// Median seconds.
    pub median_s: f64,
    /// Speedup vs the serial oracle.
    pub speedup: f64,
    /// Stamped by the bench when `threads` exceeds the measuring host's
    /// hardware threads.
    pub oversubscribed: bool,
}

/// One phase of a parsed report.
#[derive(Clone, Debug)]
pub struct ParsedPhase {
    /// Phase name (one of [`PHASES`]).
    pub phase: String,
    /// Median seconds of the serial oracle.
    pub serial_median_s: f64,
    /// Parallel medians per thread count.
    pub per_thread: Vec<PerThread>,
}

/// One SSSP kernel row from the report's `"sssp_kernels"` section. The
/// gate compares `edges_relaxed`, not seconds: relaxation counts are
/// deterministic for a fixed graph and seed, so a work regression (a
/// kernel falling back to a blunter strategy) is separable from host
/// noise.
#[derive(Clone, Debug)]
pub struct ParsedKernel {
    /// Adversarial graph family the kernel ran on.
    pub family: String,
    /// Kernel name (`delta`, `radix`, `bmssp`).
    pub kernel: String,
    /// Median seconds (kept for the record; never gated).
    pub median_s: f64,
    /// Edge relaxations performed — the deterministic work signal.
    pub edges_relaxed: u64,
}

/// The `"serve"` summary of an `epg serve-bench` report: how much faster
/// the full serving pipeline (batching + cache + landmarks) answered the
/// same request stream than the naive recompute-everything mode.
#[derive(Clone, Debug)]
pub struct ParsedServe {
    /// served QPS / naive QPS on the identical request stream.
    pub qps_speedup: f64,
    /// Kronecker scale of the measured graph, when the report records
    /// one. Amortization ratios grow with traversal cost, so speedups
    /// from different scales are not comparable.
    pub scale: Option<u32>,
}

/// The subset of an `epg-ingest-bench/v1` (or `epg-serve-bench/v1`)
/// report the gate consumes.
#[derive(Clone, Debug)]
pub struct ParsedReport {
    /// Hardware threads of the host that produced the report.
    pub host_threads: usize,
    /// Phases in file order.
    pub phases: Vec<ParsedPhase>,
    /// The `"sssp_kernels"` work table; `None` when the report predates
    /// the kernel tier (pre-PR-8 snapshots).
    pub kernels: Option<Vec<ParsedKernel>>,
    /// The `"serve"` summary; `None` for reports that never ran the
    /// serving bench.
    pub serve: Option<ParsedServe>,
}

impl ParsedReport {
    /// Parses a report, checking only what the gate needs (the full schema
    /// check lives in [`crate::ingestbench::validate_report_json`]).
    /// Accepts both report schemas: ingest reports must carry every
    /// [`PHASES`] entry, serve reports have no phase sweep at all.
    pub fn from_json(text: &str) -> Result<ParsedReport, String> {
        let doc = parse_json(text)?;
        let schema = doc.get("schema").and_then(Json::str);
        if schema != Some(SCHEMA) && schema != Some(SERVE_SCHEMA) {
            return Err(format!("\"schema\" must be \"{SCHEMA}\" or \"{SERVE_SCHEMA}\""));
        }
        let host_threads = doc
            .get("host")
            .and_then(|h| h.get("hardware_threads"))
            .and_then(Json::num)
            .ok_or("missing \"host.hardware_threads\"")? as usize;
        let mut phases = Vec::new();
        let phase_entries = match doc.get("phases") {
            None if schema == Some(SERVE_SCHEMA) => &[][..],
            other => other.and_then(Json::arr).ok_or("\"phases\" must be an array")?,
        };
        for p in phase_entries {
            let phase = p
                .get("phase")
                .and_then(Json::str)
                .ok_or("phase entry missing \"phase\"")?
                .to_string();
            let serial_median_s = p
                .get("serial_median_s")
                .and_then(Json::num)
                .ok_or_else(|| format!("phase \"{phase}\": missing \"serial_median_s\""))?;
            let mut per_thread = Vec::new();
            for e in p
                .get("per_thread")
                .and_then(Json::arr)
                .ok_or_else(|| format!("phase \"{phase}\": \"per_thread\" must be an array"))?
            {
                let threads = e
                    .get("threads")
                    .and_then(Json::num)
                    .ok_or_else(|| format!("phase \"{phase}\": entry missing \"threads\""))?
                    as usize;
                let median_s = e
                    .get("median_s")
                    .and_then(Json::num)
                    .ok_or_else(|| format!("phase \"{phase}\": entry missing \"median_s\""))?;
                let speedup = e.get("speedup_vs_serial").and_then(Json::num).ok_or_else(|| {
                    format!("phase \"{phase}\": entry missing \"speedup_vs_serial\"")
                })?;
                // Older reports predate the stamp; infer from the host
                // record so their multi-thread noise still warns.
                let oversubscribed =
                    e.get("oversubscribed").and_then(Json::bool).unwrap_or(threads > host_threads);
                per_thread.push(PerThread { threads, median_s, speedup, oversubscribed });
            }
            phases.push(ParsedPhase { phase, serial_median_s, per_thread });
        }
        if schema == Some(SCHEMA) {
            for want in PHASES {
                if !phases.iter().any(|p| p.phase == want) {
                    return Err(format!("missing phase \"{want}\""));
                }
            }
        }
        let kernels = match doc.get("sssp_kernels") {
            None => None,
            Some(sec) => {
                let mut rows = Vec::new();
                for e in sec.arr().ok_or("\"sssp_kernels\" must be an array")? {
                    let family = e
                        .get("family")
                        .and_then(Json::str)
                        .ok_or("kernel entry missing \"family\"")?
                        .to_string();
                    let kernel = e
                        .get("kernel")
                        .and_then(Json::str)
                        .ok_or("kernel entry missing \"kernel\"")?
                        .to_string();
                    let median_s = e
                        .get("median_s")
                        .and_then(Json::num)
                        .ok_or_else(|| format!("kernel {family}/{kernel}: missing \"median_s\""))?;
                    let edges_relaxed =
                        e.get("edges_relaxed").and_then(Json::num).ok_or_else(|| {
                            format!("kernel {family}/{kernel}: missing \"edges_relaxed\"")
                        })? as u64;
                    rows.push(ParsedKernel { family, kernel, median_s, edges_relaxed });
                }
                Some(rows)
            }
        };
        let serve = match doc.get("serve") {
            None => None,
            Some(sec) => Some(ParsedServe {
                qps_speedup: sec
                    .get("qps_speedup")
                    .and_then(Json::num)
                    .ok_or("\"serve\" missing \"qps_speedup\"")?,
                scale: doc
                    .get("config")
                    .and_then(|c| c.get("scale"))
                    .and_then(Json::num)
                    .map(|s| s as u32),
            }),
        };
        Ok(ParsedReport { host_threads, phases, kernels, serve })
    }
}

/// Result of gating a candidate against a baseline.
#[derive(Clone, Debug)]
pub enum GateOutcome {
    /// Every comparable (phase, thread count) held up.
    Passed {
        /// Number of speedup comparisons actually performed.
        checks: usize,
        /// Oversubscribed entries that were excluded, one line each.
        warnings: Vec<String>,
        /// Sections the baseline predates (skipped, not failed), one
        /// line each.
        notices: Vec<String>,
    },
    /// The candidate host cannot measure scaling; nothing was compared.
    Skipped {
        /// Human-readable reason.
        notice: String,
    },
    /// At least one speedup regressed beyond the tolerance.
    Failed {
        /// One line per regressed (phase, thread count).
        failures: Vec<String>,
        /// Oversubscribed entries that were excluded, one line each.
        warnings: Vec<String>,
        /// Sections the baseline predates (skipped, not failed), one
        /// line each.
        notices: Vec<String>,
    },
}

impl GateOutcome {
    /// True when the gate should fail the build.
    pub fn is_failure(&self) -> bool {
        matches!(self, GateOutcome::Failed { .. })
    }

    /// Renders the outcome for terminal output.
    pub fn render(&self) -> String {
        let mut o = String::new();
        match self {
            GateOutcome::Passed { checks, warnings, notices } => {
                for n in notices {
                    let _ = writeln!(o, "bench-gate: notice: {n}");
                }
                for w in warnings {
                    let _ = writeln!(o, "bench-gate: warning: {w}");
                }
                let _ = writeln!(
                    o,
                    "bench-gate: PASS — {checks} comparison(s) within tolerance \
                     {DEFAULT_TOLERANCE}"
                );
            }
            GateOutcome::Skipped { notice } => {
                let _ = writeln!(o, "bench-gate: SKIPPED — {notice}");
            }
            GateOutcome::Failed { failures, warnings, notices } => {
                for n in notices {
                    let _ = writeln!(o, "bench-gate: notice: {n}");
                }
                for w in warnings {
                    let _ = writeln!(o, "bench-gate: warning: {w}");
                }
                for f in failures {
                    let _ = writeln!(o, "bench-gate: FAIL — {f}");
                }
            }
        }
        o
    }
}

/// Compares a candidate report against a baseline snapshot.
///
/// Only thread counts present in *both* reports are compared: the gate
/// verifies that known points on the scaling curve did not regress, not
/// that the sweeps match. Oversubscribed entries on either side are
/// excluded from the decision and surfaced as warnings.
///
/// The optional sections gate independently of the phase sweep: kernel
/// work (`edges_relaxed`, deterministic) and serving speedup
/// (amortization, not parallelism) are both meaningful even on a
/// single-core host, so the single-core skip only silences the phase
/// speedups — it falls back to a full [`GateOutcome::Skipped`] only
/// when no section produced a comparison either.
pub fn gate(candidate: &ParsedReport, baseline: &ParsedReport, tolerance: f64) -> GateOutcome {
    let single_core = candidate.host_threads < 2;
    let single_core_notice = format!(
        "candidate host has {} hardware thread(s); speedup-vs-serial cannot be \
         measured without real parallelism (re-run on a multicore host to gate)",
        candidate.host_threads
    );
    let mut checks = 0usize;
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    let mut notices = Vec::new();
    if !single_core {
        for cand in &candidate.phases {
            let Some(base) = baseline.phases.iter().find(|p| p.phase == cand.phase) else {
                continue;
            };
            for c in &cand.per_thread {
                let Some(b) = base.per_thread.iter().find(|b| b.threads == c.threads) else {
                    continue;
                };
                if c.oversubscribed || b.oversubscribed {
                    let side = if c.oversubscribed { "candidate" } else { "baseline" };
                    warnings.push(format!(
                        "{} @ {} threads: oversubscribed on the {side} host — \
                         median kept for the record, speedup not compared",
                        cand.phase, c.threads
                    ));
                    continue;
                }
                checks += 1;
                if c.speedup < b.speedup - tolerance {
                    failures.push(format!(
                        "{} @ {} threads: speedup {:.3}x fell below baseline {:.3}x \
                         (tolerance {tolerance})",
                        cand.phase, c.threads, c.speedup, b.speedup
                    ));
                }
            }
        }
    }
    match (&candidate.kernels, &baseline.kernels) {
        (Some(cand), Some(base)) => {
            for c in cand {
                let Some(b) = base.iter().find(|b| b.family == c.family && b.kernel == c.kernel)
                else {
                    continue;
                };
                checks += 1;
                // Work, not wall time: more relaxations than the
                // baseline (beyond relative slack) means the kernel got
                // blunter, no matter how fast the host is.
                if c.edges_relaxed as f64 > b.edges_relaxed as f64 * (1.0 + tolerance) {
                    failures.push(format!(
                        "sssp kernel {}/{}: {} edges relaxed exceeds baseline {} \
                         (tolerance {tolerance})",
                        c.family, c.kernel, c.edges_relaxed, b.edges_relaxed
                    ));
                }
            }
        }
        (Some(_), None) => notices.push(
            "baseline has no \"sssp_kernels\" section (pre-kernel-tier snapshot) — \
             kernel work not compared"
                .to_string(),
        ),
        (None, _) => {}
    }
    match (&candidate.serve, &baseline.serve) {
        (Some(c), Some(b)) => {
            if let (Some(cs), Some(bs)) = (c.scale, b.scale) {
                if cs != bs {
                    notices.push(format!(
                        "serve sections measured at different scales (candidate {cs}, \
                         baseline {bs}) — amortization ratios not comparable, not gated"
                    ));
                }
            }
            if c.scale.zip(b.scale).is_none_or(|(cs, bs)| cs == bs) {
                checks += 1;
                // Relative slack: serving speedups sit an order of
                // magnitude above phase speedups, so absolute slack on
                // the ratio would be vanishingly tight here.
                if c.qps_speedup < b.qps_speedup * (1.0 - tolerance) {
                    failures.push(format!(
                        "serve: qps speedup {:.3}x fell below baseline {:.3}x \
                         (relative tolerance {tolerance})",
                        c.qps_speedup, b.qps_speedup
                    ));
                }
            }
        }
        (Some(_), None) => notices.push(
            "baseline has no \"serve\" section (pre-serving snapshot) — \
             serving speedup not compared"
                .to_string(),
        ),
        (None, _) => {}
    }
    if single_core {
        if checks == 0 && failures.is_empty() && notices.is_empty() {
            return GateOutcome::Skipped { notice: single_core_notice };
        }
        notices.push(single_core_notice);
    }
    if failures.is_empty() {
        GateOutcome::Passed { checks, warnings, notices }
    } else {
        GateOutcome::Failed { failures, warnings, notices }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a minimal valid report JSON with the given host threads and
    /// one (threads, speedup) list applied to every required phase.
    fn report_json(host_threads: usize, entries: &[(usize, f64, bool)]) -> String {
        let mut phases = String::new();
        for (i, phase) in PHASES.iter().enumerate() {
            let per: Vec<String> = entries
                .iter()
                .map(|&(t, s, over)| {
                    let median = 1.0 / s;
                    format!(
                        "{{\"threads\": {t}, \"median_s\": {median}, \
                         \"speedup_vs_serial\": {s}, \"oversubscribed\": {over}}}"
                    )
                })
                .collect();
            phases.push_str(&format!(
                "{{\"phase\": \"{phase}\", \"serial_median_s\": 1.0, \
                 \"per_thread\": [{}]}}{}",
                per.join(", "),
                if i + 1 < PHASES.len() { ", " } else { "" }
            ));
        }
        format!(
            "{{\"schema\": \"{SCHEMA}\", \
             \"host\": {{\"hardware_threads\": {host_threads}}}, \
             \"phases\": [{phases}]}}"
        )
    }

    #[test]
    fn parses_its_own_fixture() {
        let r =
            ParsedReport::from_json(&report_json(4, &[(1, 1.0, false), (2, 1.8, false)])).unwrap();
        assert_eq!(r.host_threads, 4);
        assert_eq!(r.phases.len(), PHASES.len());
        assert_eq!(r.phases[0].per_thread[1].threads, 2);
    }

    #[test]
    fn passes_when_speedups_hold() {
        let base = ParsedReport::from_json(&report_json(4, &[(2, 1.8, false)])).unwrap();
        let cand = ParsedReport::from_json(&report_json(4, &[(2, 1.7, false)])).unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        let GateOutcome::Passed { checks, warnings, notices } = out else {
            panic!("expected pass, got {out:?}");
        };
        assert_eq!(checks, PHASES.len());
        assert!(warnings.is_empty());
        assert!(notices.is_empty());
    }

    #[test]
    fn fails_on_regression_beyond_tolerance() {
        let base = ParsedReport::from_json(&report_json(4, &[(2, 1.8, false)])).unwrap();
        let cand = ParsedReport::from_json(&report_json(4, &[(2, 1.2, false)])).unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        assert!(out.is_failure());
        let GateOutcome::Failed { failures, .. } = out else { unreachable!() };
        assert_eq!(failures.len(), PHASES.len());
        assert!(failures[0].contains("1.200"));
    }

    #[test]
    fn tolerance_is_absolute_slack_on_the_ratio() {
        let base = ParsedReport::from_json(&report_json(4, &[(2, 1.8, false)])).unwrap();
        // Exactly at the edge: 1.8 - 0.25 = 1.55 is not *below* the bar.
        let cand = ParsedReport::from_json(&report_json(4, &[(2, 1.55, false)])).unwrap();
        assert!(!gate(&cand, &base, DEFAULT_TOLERANCE).is_failure());
        let cand = ParsedReport::from_json(&report_json(4, &[(2, 1.54, false)])).unwrap();
        assert!(gate(&cand, &base, DEFAULT_TOLERANCE).is_failure());
    }

    #[test]
    fn skips_on_single_core_candidate_host() {
        let base = ParsedReport::from_json(&report_json(4, &[(2, 1.8, false)])).unwrap();
        let cand = ParsedReport::from_json(&report_json(1, &[(2, 0.3, true)])).unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        let GateOutcome::Skipped { notice } = out else { panic!("expected skip, got {out:?}") };
        assert!(notice.contains("1 hardware thread"));
    }

    #[test]
    fn oversubscribed_entries_warn_instead_of_failing() {
        // Baseline captured on a single-core host: its 2-thread medians are
        // oversubscription noise and must not be treated as a bar to clear.
        let base =
            ParsedReport::from_json(&report_json(1, &[(1, 1.0, false), (2, 0.3, true)])).unwrap();
        let cand =
            ParsedReport::from_json(&report_json(4, &[(1, 1.0, false), (2, 0.1, false)])).unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        let GateOutcome::Passed { checks, warnings, .. } = out else {
            panic!("expected pass, got {out:?}");
        };
        // Only the 1-thread column was comparable.
        assert_eq!(checks, PHASES.len());
        assert_eq!(warnings.len(), PHASES.len());
        assert!(warnings[0].contains("oversubscribed"));
    }

    #[test]
    fn legacy_reports_without_stamp_infer_from_host_record() {
        let json = report_json(1, &[(2, 0.3, false)]).replace(", \"oversubscribed\": false", "");
        let r = ParsedReport::from_json(&json).unwrap();
        assert!(r.phases[0].per_thread[0].oversubscribed);
    }

    #[test]
    fn uncommon_thread_counts_are_ignored() {
        let base = ParsedReport::from_json(&report_json(8, &[(4, 3.0, false)])).unwrap();
        let cand = ParsedReport::from_json(&report_json(8, &[(2, 1.5, false)])).unwrap();
        let GateOutcome::Passed { checks, .. } = gate(&cand, &base, DEFAULT_TOLERANCE) else {
            panic!("expected pass");
        };
        assert_eq!(checks, 0);
    }

    #[test]
    fn rejects_malformed_reports() {
        assert!(ParsedReport::from_json("{}").is_err());
        let no_host = report_json(4, &[(2, 1.8, false)]).replace("hardware_threads", "hw");
        assert!(ParsedReport::from_json(&no_host).unwrap_err().contains("hardware_threads"));
        let missing_phase = report_json(4, &[(2, 1.8, false)]).replace("\"build\"", "\"built\"");
        assert!(ParsedReport::from_json(&missing_phase).unwrap_err().contains("build"));
    }

    /// Splices extra top-level sections into a fixture report.
    fn with_sections(base: &str, sections: &[String]) -> String {
        let trimmed = base.trim_end().trim_end_matches('}');
        format!("{trimmed}, {}}}", sections.join(", "))
    }

    fn kernels_section(edges_relaxed: u64) -> String {
        format!(
            "\"sssp_kernels\": [{{\"family\": \"kron\", \"kernel\": \"delta\", \
             \"median_s\": 0.5, \"edges_relaxed\": {edges_relaxed}}}]"
        )
    }

    fn serve_section(qps_speedup: f64) -> String {
        format!("\"serve\": {{\"qps_speedup\": {qps_speedup}}}")
    }

    #[test]
    fn stripped_baseline_skips_each_missing_section_with_a_notice() {
        // A pre-kernel-tier, pre-serving baseline: both sections absent.
        // The candidate carries both; neither may fail the gate.
        let base = ParsedReport::from_json(&report_json(4, &[(2, 1.8, false)])).unwrap();
        let cand = ParsedReport::from_json(&with_sections(
            &report_json(4, &[(2, 1.8, false)]),
            &[kernels_section(1_000_000), serve_section(6.0)],
        ))
        .unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        let GateOutcome::Passed { checks, notices, .. } = out else {
            panic!("expected pass, got {out:?}");
        };
        assert_eq!(checks, PHASES.len(), "only the phase sweep was comparable");
        assert_eq!(notices.len(), 2, "one notice per missing baseline section");
        assert!(notices[0].contains("sssp_kernels"));
        assert!(notices[1].contains("serve"));
        let text = gate(&cand, &base, DEFAULT_TOLERANCE).render();
        assert!(text.contains("notice") && text.contains("PASS"));
    }

    #[test]
    fn kernel_work_regression_fails_and_parity_passes() {
        let base = ParsedReport::from_json(&with_sections(
            &report_json(4, &[(2, 1.8, false)]),
            &[kernels_section(1_000_000)],
        ))
        .unwrap();
        let ok = ParsedReport::from_json(&with_sections(
            &report_json(4, &[(2, 1.8, false)]),
            &[kernels_section(1_200_000)], // within the 25% slack
        ))
        .unwrap();
        assert!(!gate(&ok, &base, DEFAULT_TOLERANCE).is_failure());
        let blunter = ParsedReport::from_json(&with_sections(
            &report_json(4, &[(2, 1.8, false)]),
            &[kernels_section(2_000_000)],
        ))
        .unwrap();
        let out = gate(&blunter, &base, DEFAULT_TOLERANCE);
        let GateOutcome::Failed { failures, .. } = out else { panic!("expected fail") };
        assert!(failures[0].contains("edges relaxed"));
    }

    #[test]
    fn serve_speedup_regression_fails() {
        let base = ParsedReport::from_json(&with_sections(
            &report_json(4, &[(2, 1.8, false)]),
            &[serve_section(6.0)],
        ))
        .unwrap();
        let cand = ParsedReport::from_json(&with_sections(
            &report_json(4, &[(2, 1.8, false)]),
            &[serve_section(1.1)],
        ))
        .unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        let GateOutcome::Failed { failures, .. } = out else { panic!("expected fail") };
        assert!(failures[0].contains("qps speedup"));
    }

    #[test]
    fn serving_speedup_gates_even_on_a_single_core_host() {
        // Amortization is not parallelism: a 1-thread host still proves
        // (or regresses) the serving win, so the single-core escape
        // hatch only silences the phase sweep.
        let base = ParsedReport::from_json(&with_sections(
            &report_json(1, &[(1, 1.0, false)]),
            &[serve_section(6.0)],
        ))
        .unwrap();
        let cand = ParsedReport::from_json(&with_sections(
            &report_json(1, &[(1, 1.0, false)]),
            &[serve_section(5.9)],
        ))
        .unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        let GateOutcome::Passed { checks, notices, .. } = out else {
            panic!("expected pass, got {out:?}");
        };
        assert_eq!(checks, 1, "only the serve section was comparable");
        assert!(notices.iter().any(|n| n.contains("hardware thread")));
        let regressed = ParsedReport::from_json(&with_sections(
            &report_json(1, &[(1, 1.0, false)]),
            &[serve_section(1.0)],
        ))
        .unwrap();
        assert!(gate(&regressed, &base, DEFAULT_TOLERANCE).is_failure());
    }

    #[test]
    fn serve_speedups_from_different_scales_are_not_compared() {
        let mk = |scale: u32, speedup: f64| {
            ParsedReport::from_json(&format!(
                "{{\"schema\": \"{SERVE_SCHEMA}\", \"host\": {{\"hardware_threads\": 1}}, \
                 \"config\": {{\"scale\": {scale}}}, \
                 \"serve\": {{\"qps_speedup\": {speedup}}}}}"
            ))
            .unwrap()
        };
        // A quick (scale-8) run against the committed scale-18 snapshot:
        // smaller graphs amortize less, so the ratio must not be gated.
        let base = mk(18, 31.0);
        let out = gate(&mk(8, 7.0), &base, DEFAULT_TOLERANCE);
        let GateOutcome::Passed { checks, notices, .. } = out else {
            panic!("expected pass, got {out:?}");
        };
        assert_eq!(checks, 0);
        assert!(notices.iter().any(|n| n.contains("different scales")));
        // Same scale still gates, with relative slack on the ratio.
        assert!(gate(&mk(18, 20.0), &base, DEFAULT_TOLERANCE).is_failure());
        assert!(!gate(&mk(18, 28.0), &base, DEFAULT_TOLERANCE).is_failure());
    }

    #[test]
    fn parses_serve_schema_reports_without_a_phase_sweep() {
        let json = format!(
            "{{\"schema\": \"{SERVE_SCHEMA}\", \
             \"host\": {{\"hardware_threads\": 1}}, \
             \"serve\": {{\"qps_speedup\": 4.5}}}}"
        );
        let r = ParsedReport::from_json(&json).unwrap();
        assert!(r.phases.is_empty());
        assert!((r.serve.unwrap().qps_speedup - 4.5).abs() < 1e-12);
        let bad = json.replace("qps_speedup", "qps");
        assert!(ParsedReport::from_json(&bad).unwrap_err().contains("qps_speedup"));
    }

    #[test]
    fn render_mentions_every_failure_and_warning() {
        let base =
            ParsedReport::from_json(&report_json(4, &[(2, 1.8, false), (4, 0.5, true)])).unwrap();
        let cand =
            ParsedReport::from_json(&report_json(4, &[(2, 1.0, false), (4, 0.5, true)])).unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        let text = out.render();
        assert!(text.contains("FAIL"));
        assert!(text.contains("warning"));
        let skip = gate(
            &ParsedReport::from_json(&report_json(1, &[(2, 0.3, true)])).unwrap(),
            &base,
            DEFAULT_TOLERANCE,
        );
        assert!(skip.render().contains("SKIPPED"));
    }
}
