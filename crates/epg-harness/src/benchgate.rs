//! Bench regression gate: holds a candidate `epg-ingest-bench/v1` report to
//! the speedups committed in a baseline snapshot (`epg bench --json
//! --baseline BENCH_ingest.json --gate`).
//!
//! The gate compares `speedup_vs_serial` per (phase, thread count) and fails
//! when the candidate drops more than [`DEFAULT_TOLERANCE`] below the
//! baseline. Two escape hatches keep it honest rather than noisy:
//!
//! - **Single-core skip.** Speedup-vs-serial on a host with
//!   `hardware_threads < 2` measures oversubscription, not scaling, so the
//!   gate skips entirely (with a notice) instead of pretending to verify.
//! - **Oversubscription warnings.** Individual thread counts beyond either
//!   host's hardware threads (stamped `"oversubscribed"` by the bench, or
//!   inferred from the host record for older baselines) are reported as
//!   warnings and excluded from the pass/fail decision.

use crate::ingestbench::{parse_json, Json, PHASES, SCHEMA};
use std::fmt::Write as _;

/// How far a candidate speedup may fall below the baseline before the gate
/// fails. Absolute slack on the speedup ratio: medians of a few trials on
/// shared CI hardware jitter, and a 4× kernel that measures 3.9× is not a
/// regression. A real fallback to a contended kernel (4× → 0.3×) clears
/// this bar by an order of magnitude.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// One measured thread count within a phase.
#[derive(Clone, Debug)]
pub struct PerThread {
    /// Thread count of the measurement.
    pub threads: usize,
    /// Median seconds.
    pub median_s: f64,
    /// Speedup vs the serial oracle.
    pub speedup: f64,
    /// Stamped by the bench when `threads` exceeds the measuring host's
    /// hardware threads.
    pub oversubscribed: bool,
}

/// One phase of a parsed report.
#[derive(Clone, Debug)]
pub struct ParsedPhase {
    /// Phase name (one of [`PHASES`]).
    pub phase: String,
    /// Median seconds of the serial oracle.
    pub serial_median_s: f64,
    /// Parallel medians per thread count.
    pub per_thread: Vec<PerThread>,
}

/// The subset of an `epg-ingest-bench/v1` report the gate consumes.
#[derive(Clone, Debug)]
pub struct ParsedReport {
    /// Hardware threads of the host that produced the report.
    pub host_threads: usize,
    /// Phases in file order.
    pub phases: Vec<ParsedPhase>,
}

impl ParsedReport {
    /// Parses a report, checking only what the gate needs (the full schema
    /// check lives in [`crate::ingestbench::validate_report_json`]).
    pub fn from_json(text: &str) -> Result<ParsedReport, String> {
        let doc = parse_json(text)?;
        if doc.get("schema").and_then(Json::str) != Some(SCHEMA) {
            return Err(format!("\"schema\" must be \"{SCHEMA}\""));
        }
        let host_threads = doc
            .get("host")
            .and_then(|h| h.get("hardware_threads"))
            .and_then(Json::num)
            .ok_or("missing \"host.hardware_threads\"")? as usize;
        let mut phases = Vec::new();
        for p in doc.get("phases").and_then(Json::arr).ok_or("\"phases\" must be an array")? {
            let phase = p
                .get("phase")
                .and_then(Json::str)
                .ok_or("phase entry missing \"phase\"")?
                .to_string();
            let serial_median_s = p
                .get("serial_median_s")
                .and_then(Json::num)
                .ok_or_else(|| format!("phase \"{phase}\": missing \"serial_median_s\""))?;
            let mut per_thread = Vec::new();
            for e in p
                .get("per_thread")
                .and_then(Json::arr)
                .ok_or_else(|| format!("phase \"{phase}\": \"per_thread\" must be an array"))?
            {
                let threads = e
                    .get("threads")
                    .and_then(Json::num)
                    .ok_or_else(|| format!("phase \"{phase}\": entry missing \"threads\""))?
                    as usize;
                let median_s = e
                    .get("median_s")
                    .and_then(Json::num)
                    .ok_or_else(|| format!("phase \"{phase}\": entry missing \"median_s\""))?;
                let speedup = e.get("speedup_vs_serial").and_then(Json::num).ok_or_else(|| {
                    format!("phase \"{phase}\": entry missing \"speedup_vs_serial\"")
                })?;
                // Older reports predate the stamp; infer from the host
                // record so their multi-thread noise still warns.
                let oversubscribed =
                    e.get("oversubscribed").and_then(Json::bool).unwrap_or(threads > host_threads);
                per_thread.push(PerThread { threads, median_s, speedup, oversubscribed });
            }
            phases.push(ParsedPhase { phase, serial_median_s, per_thread });
        }
        for want in PHASES {
            if !phases.iter().any(|p| p.phase == want) {
                return Err(format!("missing phase \"{want}\""));
            }
        }
        Ok(ParsedReport { host_threads, phases })
    }
}

/// Result of gating a candidate against a baseline.
#[derive(Clone, Debug)]
pub enum GateOutcome {
    /// Every comparable (phase, thread count) held up.
    Passed {
        /// Number of speedup comparisons actually performed.
        checks: usize,
        /// Oversubscribed entries that were excluded, one line each.
        warnings: Vec<String>,
    },
    /// The candidate host cannot measure scaling; nothing was compared.
    Skipped {
        /// Human-readable reason.
        notice: String,
    },
    /// At least one speedup regressed beyond the tolerance.
    Failed {
        /// One line per regressed (phase, thread count).
        failures: Vec<String>,
        /// Oversubscribed entries that were excluded, one line each.
        warnings: Vec<String>,
    },
}

impl GateOutcome {
    /// True when the gate should fail the build.
    pub fn is_failure(&self) -> bool {
        matches!(self, GateOutcome::Failed { .. })
    }

    /// Renders the outcome for terminal output.
    pub fn render(&self) -> String {
        let mut o = String::new();
        match self {
            GateOutcome::Passed { checks, warnings } => {
                for w in warnings {
                    let _ = writeln!(o, "bench-gate: warning: {w}");
                }
                let _ = writeln!(
                    o,
                    "bench-gate: PASS — {checks} speedup comparison(s) within tolerance \
                     {DEFAULT_TOLERANCE}"
                );
            }
            GateOutcome::Skipped { notice } => {
                let _ = writeln!(o, "bench-gate: SKIPPED — {notice}");
            }
            GateOutcome::Failed { failures, warnings } => {
                for w in warnings {
                    let _ = writeln!(o, "bench-gate: warning: {w}");
                }
                for f in failures {
                    let _ = writeln!(o, "bench-gate: FAIL — {f}");
                }
            }
        }
        o
    }
}

/// Compares a candidate report against a baseline snapshot.
///
/// Only thread counts present in *both* reports are compared: the gate
/// verifies that known points on the scaling curve did not regress, not
/// that the sweeps match. Oversubscribed entries on either side are
/// excluded from the decision and surfaced as warnings.
pub fn gate(candidate: &ParsedReport, baseline: &ParsedReport, tolerance: f64) -> GateOutcome {
    if candidate.host_threads < 2 {
        return GateOutcome::Skipped {
            notice: format!(
                "candidate host has {} hardware thread(s); speedup-vs-serial cannot be \
                 measured without real parallelism (re-run on a multicore host to gate)",
                candidate.host_threads
            ),
        };
    }
    let mut checks = 0usize;
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    for cand in &candidate.phases {
        let Some(base) = baseline.phases.iter().find(|p| p.phase == cand.phase) else {
            continue;
        };
        for c in &cand.per_thread {
            let Some(b) = base.per_thread.iter().find(|b| b.threads == c.threads) else {
                continue;
            };
            if c.oversubscribed || b.oversubscribed {
                let side = if c.oversubscribed { "candidate" } else { "baseline" };
                warnings.push(format!(
                    "{} @ {} threads: oversubscribed on the {side} host — \
                     median kept for the record, speedup not compared",
                    cand.phase, c.threads
                ));
                continue;
            }
            checks += 1;
            if c.speedup < b.speedup - tolerance {
                failures.push(format!(
                    "{} @ {} threads: speedup {:.3}x fell below baseline {:.3}x \
                     (tolerance {tolerance})",
                    cand.phase, c.threads, c.speedup, b.speedup
                ));
            }
        }
    }
    if failures.is_empty() {
        GateOutcome::Passed { checks, warnings }
    } else {
        GateOutcome::Failed { failures, warnings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a minimal valid report JSON with the given host threads and
    /// one (threads, speedup) list applied to every required phase.
    fn report_json(host_threads: usize, entries: &[(usize, f64, bool)]) -> String {
        let mut phases = String::new();
        for (i, phase) in PHASES.iter().enumerate() {
            let per: Vec<String> = entries
                .iter()
                .map(|&(t, s, over)| {
                    let median = 1.0 / s;
                    format!(
                        "{{\"threads\": {t}, \"median_s\": {median}, \
                         \"speedup_vs_serial\": {s}, \"oversubscribed\": {over}}}"
                    )
                })
                .collect();
            phases.push_str(&format!(
                "{{\"phase\": \"{phase}\", \"serial_median_s\": 1.0, \
                 \"per_thread\": [{}]}}{}",
                per.join(", "),
                if i + 1 < PHASES.len() { ", " } else { "" }
            ));
        }
        format!(
            "{{\"schema\": \"{SCHEMA}\", \
             \"host\": {{\"hardware_threads\": {host_threads}}}, \
             \"phases\": [{phases}]}}"
        )
    }

    #[test]
    fn parses_its_own_fixture() {
        let r =
            ParsedReport::from_json(&report_json(4, &[(1, 1.0, false), (2, 1.8, false)])).unwrap();
        assert_eq!(r.host_threads, 4);
        assert_eq!(r.phases.len(), PHASES.len());
        assert_eq!(r.phases[0].per_thread[1].threads, 2);
    }

    #[test]
    fn passes_when_speedups_hold() {
        let base = ParsedReport::from_json(&report_json(4, &[(2, 1.8, false)])).unwrap();
        let cand = ParsedReport::from_json(&report_json(4, &[(2, 1.7, false)])).unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        let GateOutcome::Passed { checks, warnings } = out else {
            panic!("expected pass, got {out:?}");
        };
        assert_eq!(checks, PHASES.len());
        assert!(warnings.is_empty());
    }

    #[test]
    fn fails_on_regression_beyond_tolerance() {
        let base = ParsedReport::from_json(&report_json(4, &[(2, 1.8, false)])).unwrap();
        let cand = ParsedReport::from_json(&report_json(4, &[(2, 1.2, false)])).unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        assert!(out.is_failure());
        let GateOutcome::Failed { failures, .. } = out else { unreachable!() };
        assert_eq!(failures.len(), PHASES.len());
        assert!(failures[0].contains("1.200"));
    }

    #[test]
    fn tolerance_is_absolute_slack_on_the_ratio() {
        let base = ParsedReport::from_json(&report_json(4, &[(2, 1.8, false)])).unwrap();
        // Exactly at the edge: 1.8 - 0.25 = 1.55 is not *below* the bar.
        let cand = ParsedReport::from_json(&report_json(4, &[(2, 1.55, false)])).unwrap();
        assert!(!gate(&cand, &base, DEFAULT_TOLERANCE).is_failure());
        let cand = ParsedReport::from_json(&report_json(4, &[(2, 1.54, false)])).unwrap();
        assert!(gate(&cand, &base, DEFAULT_TOLERANCE).is_failure());
    }

    #[test]
    fn skips_on_single_core_candidate_host() {
        let base = ParsedReport::from_json(&report_json(4, &[(2, 1.8, false)])).unwrap();
        let cand = ParsedReport::from_json(&report_json(1, &[(2, 0.3, true)])).unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        let GateOutcome::Skipped { notice } = out else { panic!("expected skip, got {out:?}") };
        assert!(notice.contains("1 hardware thread"));
    }

    #[test]
    fn oversubscribed_entries_warn_instead_of_failing() {
        // Baseline captured on a single-core host: its 2-thread medians are
        // oversubscription noise and must not be treated as a bar to clear.
        let base =
            ParsedReport::from_json(&report_json(1, &[(1, 1.0, false), (2, 0.3, true)])).unwrap();
        let cand =
            ParsedReport::from_json(&report_json(4, &[(1, 1.0, false), (2, 0.1, false)])).unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        let GateOutcome::Passed { checks, warnings } = out else {
            panic!("expected pass, got {out:?}");
        };
        // Only the 1-thread column was comparable.
        assert_eq!(checks, PHASES.len());
        assert_eq!(warnings.len(), PHASES.len());
        assert!(warnings[0].contains("oversubscribed"));
    }

    #[test]
    fn legacy_reports_without_stamp_infer_from_host_record() {
        let json = report_json(1, &[(2, 0.3, false)]).replace(", \"oversubscribed\": false", "");
        let r = ParsedReport::from_json(&json).unwrap();
        assert!(r.phases[0].per_thread[0].oversubscribed);
    }

    #[test]
    fn uncommon_thread_counts_are_ignored() {
        let base = ParsedReport::from_json(&report_json(8, &[(4, 3.0, false)])).unwrap();
        let cand = ParsedReport::from_json(&report_json(8, &[(2, 1.5, false)])).unwrap();
        let GateOutcome::Passed { checks, .. } = gate(&cand, &base, DEFAULT_TOLERANCE) else {
            panic!("expected pass");
        };
        assert_eq!(checks, 0);
    }

    #[test]
    fn rejects_malformed_reports() {
        assert!(ParsedReport::from_json("{}").is_err());
        let no_host = report_json(4, &[(2, 1.8, false)]).replace("hardware_threads", "hw");
        assert!(ParsedReport::from_json(&no_host).unwrap_err().contains("hardware_threads"));
        let missing_phase = report_json(4, &[(2, 1.8, false)]).replace("\"build\"", "\"built\"");
        assert!(ParsedReport::from_json(&missing_phase).unwrap_err().contains("build"));
    }

    #[test]
    fn render_mentions_every_failure_and_warning() {
        let base =
            ParsedReport::from_json(&report_json(4, &[(2, 1.8, false), (4, 0.5, true)])).unwrap();
        let cand =
            ParsedReport::from_json(&report_json(4, &[(2, 1.0, false), (4, 0.5, true)])).unwrap();
        let out = gate(&cand, &base, DEFAULT_TOLERANCE);
        let text = out.render();
        assert!(text.contains("FAIL"));
        assert!(text.contains("warning"));
        let skip = gate(
            &ParsedReport::from_json(&report_json(1, &[(2, 0.3, true)])).unwrap(),
            &base,
            DEFAULT_TOLERANCE,
        );
        assert!(skip.render().contains("SKIPPED"));
    }
}
