//! The five-phase pipeline, end to end (Fig. 1).
//!
//! Each cyan box of the paper's Fig. 1 is one method here; the green
//! ellipses are the files written under the output directory:
//!
//! ```text
//! out/
//!   datasets/<name>.{snap,bin,sym.snap,sym.bin}   (phase 2)
//!   datasets/logs/<engine>_<algo>_<name>.log      (phase 3)
//!   results.csv                                   (phase 4)
//!   plots/*.svg, summary.txt                      (phase 5)
//! ```

use crate::dataset::Dataset;
use crate::plot::{self, Scale};
use crate::registry::EngineKind;
use crate::runner::{run_experiment, ExperimentConfig, ExperimentResult};
use crate::stats::Summary;
use epg_engine_api::{Algorithm, Phase};
use epg_generator::GraphSpec;
use std::io;
use std::path::PathBuf;

/// Pipeline driver bound to an output directory.
pub struct Pipeline {
    /// Root of all written artifacts.
    pub out_dir: PathBuf,
}

impl Pipeline {
    /// Creates a pipeline rooted at `out_dir` (created if missing).
    pub fn new(out_dir: PathBuf) -> io::Result<Pipeline> {
        std::fs::create_dir_all(&out_dir)?;
        Ok(Pipeline { out_dir })
    }

    /// Phase 1: report the installed engines (our "stable forks").
    pub fn setup_report(&self) -> String {
        let mut out = String::from("installed engines:\n");
        for k in EngineKind::ALL {
            let e = k.create();
            let info = e.info();
            out.push_str(&format!(
                "  {:<11} repr={:<40} parallelism={}\n",
                info.name, info.representation, info.parallelism
            ));
        }
        out
    }

    /// Phase 2: generate + homogenize a dataset into `out/datasets/`.
    pub fn homogenize(&self, spec: &GraphSpec, seed: u64) -> io::Result<Dataset> {
        let ds = Dataset::from_spec(spec, seed);
        ds.write_files(&self.out_dir.join("datasets"))?;
        Ok(ds)
    }

    /// Phase 3: run the experiment (file-based, logs emitted).
    pub fn run(&self, mut cfg: ExperimentConfig, ds: &Dataset) -> ExperimentResult {
        cfg.use_files = true;
        cfg.work_dir = Some(self.out_dir.join("datasets"));
        run_experiment(&cfg, ds)
    }

    /// Phase 4: compress results into `out/results.csv`.
    pub fn parse(&self, result: &ExperimentResult) -> io::Result<PathBuf> {
        let path = self.out_dir.join("results.csv");
        std::fs::write(&path, result.to_csv())?;
        Ok(path)
    }

    /// Phase 5: statistics and SVG plots into `out/plots/`.
    /// Returns the written file paths.
    pub fn analyze(&self, result: &ExperimentResult, ds: &Dataset) -> io::Result<Vec<PathBuf>> {
        let plot_dir = self.out_dir.join("plots");
        std::fs::create_dir_all(&plot_dir)?;
        let mut written = Vec::new();
        let mut summary_txt = String::new();

        for algo in [Algorithm::Bfs, Algorithm::Sssp, Algorithm::PageRank] {
            let groups: Vec<(String, Summary)> = EngineKind::ALL
                .into_iter()
                .filter_map(|k| {
                    let times = result.run_times(k, algo);
                    (!times.is_empty()).then(|| (k.name().to_string(), Summary::of(&times)))
                })
                .collect();
            if groups.is_empty() {
                continue;
            }
            for (name, s) in &groups {
                summary_txt.push_str(&format!(
                    "{} {}: median={:.6}s mean={:.6}s sd={:.6} rsd={:.3} n={}\n",
                    name,
                    algo.abbrev(),
                    s.median,
                    s.mean,
                    s.stddev,
                    s.relative_stddev(),
                    s.n
                ));
            }
            let svg = plot::boxplot(
                &format!("{} Time ({})", algo.abbrev(), ds.name),
                "Time (seconds)",
                &groups,
                Scale::Log,
            );
            let path = plot_dir.join(format!("{}_time.svg", algo.abbrev().to_lowercase()));
            std::fs::write(&path, svg)?;
            written.push(path);
        }

        // Construction-time plot (Figs. 2/3 right panels).
        let groups: Vec<(String, Summary)> = EngineKind::ALL
            .into_iter()
            .filter_map(|k| {
                let times = result.construct_times(k);
                (!times.is_empty()).then(|| (k.name().to_string(), Summary::of(&times)))
            })
            .collect();
        if !groups.is_empty() {
            let svg = plot::boxplot(
                &format!("Data Structure Construction ({})", ds.name),
                "Time (seconds)",
                &groups,
                Scale::Log,
            );
            let path = plot_dir.join("construction_time.svg");
            std::fs::write(&path, svg)?;
            written.push(path);
        }

        // PageRank iteration bars (Fig. 4 right panel).
        let bars: Vec<(String, f64)> = EngineKind::ALL
            .into_iter()
            .filter_map(|k| {
                let iters = result.pr_iterations(k);
                (!iters.is_empty()).then(|| {
                    (
                        k.name().to_string(),
                        iters.iter().map(|&x| x as f64).sum::<f64>() / iters.len() as f64,
                    )
                })
            })
            .collect();
        if !bars.is_empty() {
            let svg = plot::bar_chart("PageRank Iterations", "Iterations", &bars);
            let path = plot_dir.join("pr_iterations.svg");
            std::fs::write(&path, svg)?;
            written.push(path);
        }

        // Granula-style operation charts: one per engine, for its first
        // kernel run (phase times + machine-model kernel decomposition).
        let granula_dir = self.out_dir.join("granula");
        std::fs::create_dir_all(&granula_dir)?;
        let model = epg_machine::MachineModel::paper_machine();
        for kind in EngineKind::ALL {
            let Some(run) = result.runs.iter().find(|r| r.engine == kind) else { continue };
            let read = result
                .records
                .iter()
                .find(|r| r.engine == kind && r.phase == Phase::ReadFile)
                .map_or(0.0, |r| r.seconds);
            let construct = result
                .records
                .iter()
                .find(|r| r.engine == kind && r.phase == Phase::Construct)
                .map_or(0.0, |r| r.seconds);
            let phases =
                [(Phase::ReadFile, read), (Phase::Construct, construct), (Phase::Run, run.seconds)];
            let rate = model.calibrate_rate(&run.output.trace, run.seconds.max(1e-9));
            let chart =
                crate::granula::OperationChart::build(&phases, &run.output.trace, &model, rate, 32);
            let path = granula_dir.join(format!("{}_{}.txt", kind.name(), run.algorithm.abbrev()));
            std::fs::write(&path, chart.to_text())?;
            written.push(path);
        }

        let path = self.out_dir.join("summary.txt");
        std::fs::write(&path, summary_txt)?;
        written.push(path);

        // The combined markdown report.
        let path = self.out_dir.join("report.md");
        std::fs::write(&path, crate::report::render(result, ds, 32))?;
        written.push(path);
        Ok(written)
    }

    /// All five phases with default settings — the "single shell command"
    /// experience the paper aims for.
    pub fn run_all(
        &self,
        spec: &GraphSpec,
        seed: u64,
        threads: usize,
        max_roots: Option<usize>,
    ) -> io::Result<Vec<PathBuf>> {
        let ds = self.homogenize(spec, seed)?;
        let cfg = ExperimentConfig { threads, max_roots, ..ExperimentConfig::new() };
        let result = self.run(cfg, &ds);
        let mut written = vec![self.parse(&result)?];
        written.extend(self.analyze(&result, &ds)?);
        Ok(written)
    }

    /// Re-parses the phase-3 logs on disk (the AWK step) — used to verify
    /// the CSV against independently parsed logs.
    pub fn reparse_logs(&self) -> io::Result<Vec<(String, Vec<crate::logs::LogEntry>)>> {
        let log_dir = self.out_dir.join("datasets").join("logs");
        let mut out = Vec::new();
        for entry in std::fs::read_dir(log_dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            // Telemetry streams (*.trace.jsonl) are not dialect logs; they
            // have their own parser (`crate::tracefile`).
            if name.ends_with(".trace.jsonl") {
                continue;
            }
            let Some(engine) = name.split('_').next().and_then(EngineKind::from_name) else {
                continue;
            };
            let style = engine.create().log_style();
            let text = std::fs::read_to_string(entry.path())?;
            out.push((name, crate::logs::parse_log(style, &text)));
        }
        Ok(out)
    }
}

/// Convenience used by tests and benches: does `records` contain a Run row
/// for the pair?
pub fn has_run(result: &ExperimentResult, engine: EngineKind, algo: Algorithm) -> bool {
    result
        .records
        .iter()
        .any(|r| r.engine == engine && r.algorithm == Some(algo) && r.phase == Phase::Run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_pipeline_writes_everything() {
        let dir = std::env::temp_dir().join("epg_pipeline_test");
        std::fs::remove_dir_all(&dir).ok();
        let p = Pipeline::new(dir.clone()).unwrap();
        let spec = GraphSpec::Kronecker { scale: 6, edge_factor: 8, weighted: true };
        let written = p.run_all(&spec, 7, 1, Some(2)).unwrap();
        assert!(written.iter().any(|w| w.ends_with("results.csv")));
        assert!(dir.join("plots").join("bfs_time.svg").exists());
        assert!(dir.join("granula").read_dir().unwrap().count() >= 4);
        let report = std::fs::read_to_string(dir.join("report.md")).unwrap();
        assert!(report.contains("## Projected energy"));
        assert!(dir.join("plots").join("pr_iterations.svg").exists());
        assert!(dir.join("summary.txt").exists());
        // Phase-4 CSV parses back.
        let rows =
            crate::csvio::read_all(std::fs::File::open(dir.join("results.csv")).unwrap()).unwrap();
        assert!(rows.len() > 5);
        // Logs re-parse through the dialect parsers.
        let logs = p.reparse_logs().unwrap();
        assert!(!logs.is_empty());
        for (name, entries) in &logs {
            assert!(!entries.is_empty(), "log {name} parsed empty");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn setup_report_lists_all_engines() {
        let dir = std::env::temp_dir().join("epg_pipeline_setup_test");
        let p = Pipeline::new(dir.clone()).unwrap();
        let rep = p.setup_report();
        for k in EngineKind::ALL {
            assert!(rep.contains(k.name()));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
