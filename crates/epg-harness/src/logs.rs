//! Phases 3/4 glue: engine-style log emission and the log parser.
//!
//! The original framework gets its numbers by "parsing log files (for
//! execution time)" with Bash/AWK (§III, §III-E). Each system logs in its
//! own dialect ([`epg_engine_api::logfmt::LogStyle`]); the harness writes
//! those dialects from its measured phase times and the parser reads them
//! back — so the CSV genuinely flows through the same log-scraping step
//! the paper describes (including surviving the chatter lines real logs
//! contain).

use epg_engine_api::logfmt::LogStyle;
use epg_engine_api::Phase;
use std::fmt::Write as _;

/// One timed phase entry destined for a log.
#[derive(Clone, Debug, PartialEq)]
pub struct LogEntry {
    /// Which phase.
    pub phase: Phase,
    /// Measured seconds.
    pub seconds: f64,
}

/// Renders a run's log in the engine's dialect, interleaved with the kind
/// of chatter real logs contain.
pub fn render_log(style: LogStyle, context: &str, entries: &[LogEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {context} ===");
    match style {
        LogStyle::PowerGraph => {
            let _ = writeln!(out, "INFO:  dc.cpp(init): Cluster of 1 instances created.");
        }
        LogStyle::GraphMat => {
            let _ = writeln!(out, "initialize engine: 8.32081e-05 sec");
        }
        LogStyle::Graph500 => {
            let _ = writeln!(out, "SCALE: parsed from input");
        }
        _ => {}
    }
    for e in entries {
        if let Some(line) = style.format_phase(e.phase, e.seconds, context) {
            let _ = writeln!(out, "{line}");
        }
    }
    if style == LogStyle::GraphMat {
        let _ = writeln!(out, "deinitialize engine: 0.00022006 sec");
    }
    out
}

/// Parses a log back into per-phase totals (multiple lines for one phase
/// accumulate, as GraphMat's multi-algorithm runs do).
pub fn parse_log(style: LogStyle, text: &str) -> Vec<LogEntry> {
    let mut totals: Vec<(Phase, f64)> = Vec::new();
    for line in text.lines() {
        if let Some((phase, secs)) = style.parse_line(line) {
            match totals.iter_mut().find(|(p, _)| *p == phase) {
                Some((_, t)) => *t += secs,
                None => totals.push((phase, secs)),
            }
        }
    }
    totals.into_iter().map(|(phase, seconds)| LogEntry { phase, seconds }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_style() {
        let entries = vec![
            LogEntry { phase: Phase::ReadFile, seconds: 2.65211 },
            LogEntry { phase: Phase::Construct, seconds: 5.91229 },
            LogEntry { phase: Phase::Run, seconds: 0.149445 },
            LogEntry { phase: Phase::Output, seconds: 0.0641179 },
        ];
        for style in [
            LogStyle::Gap,
            LogStyle::Graph500,
            LogStyle::GraphBig,
            LogStyle::GraphMat,
            LogStyle::PowerGraph,
            LogStyle::Generic,
        ] {
            let text = render_log(style, "PageRank on dota-league", &entries);
            let parsed = parse_log(style, &text);
            for want in &entries {
                if style.format_phase(want.phase, 1.0, "x").is_none() {
                    continue; // dialect doesn't log this phase
                }
                let got = parsed
                    .iter()
                    .find(|e| e.phase == want.phase)
                    .unwrap_or_else(|| panic!("{style:?} lost {:?}", want.phase));
                assert!((got.seconds - want.seconds).abs() < 1e-4, "{style:?}");
            }
        }
    }

    #[test]
    fn chatter_is_ignored() {
        let text = "junk line\nINFO: something unrelated 3.4\nTrial Time:          0.5\n";
        let parsed = parse_log(LogStyle::Gap, text);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].phase, Phase::Run);
    }

    #[test]
    fn repeated_phase_lines_accumulate() {
        let text = "Trial Time:          0.5\nTrial Time:          0.25\n";
        let parsed = parse_log(LogStyle::Gap, text);
        assert_eq!(parsed.len(), 1);
        assert!((parsed[0].seconds - 0.75).abs() < 1e-9);
    }
}
