//! `easy-parallel-graph-rs`: the paper's framework.
//!
//! §III breaks performance characterization into five phases, each one
//! shell command in the original; here each is a module plus an `epg` CLI
//! subcommand:
//!
//! 1. **setup** ([`registry`]) — instantiate the stable, homogenized
//!    engines;
//! 2. **homogenize** ([`dataset`]) — given a synthetic size or a SNAP file,
//!    materialize the per-engine input files;
//! 3. **run** ([`runner`]) — run every algorithm on every engine, many
//!    times (32 roots), with phase-separated timing; engine-style log
//!    files are emitted ([`logs`]);
//! 4. **parse** ([`logs`], [`csvio`]) — compress the logs into a CSV;
//! 5. **analyze** ([`stats`], [`plot`]) — statistics and SVG plots (the R
//!    phase of the original).
//!
//! [`graphalytics`] reimplements the comparison baseline: Graphalytics
//! v0.3's single-trial, phase-confounded methodology and its per-system
//! HTML report (Table I, Table II, Fig. 7).

#![warn(missing_docs)]
pub mod benchgate;
pub mod csvio;
pub mod dataset;
pub mod granula;
pub mod graphalytics;
pub mod ingestbench;
pub mod logs;
pub mod pipeline;
pub mod plot;
pub mod registry;
pub mod report;
pub mod runner;
pub mod servebench;
pub mod stats;
pub mod supervise;
pub mod tracefile;

pub use registry::EngineKind;
pub use runner::{ExperimentConfig, ExperimentResult, RunRecord};
pub use supervise::{SupervisorConfig, TrialOutcome};
