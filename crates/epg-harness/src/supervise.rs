//! Trial supervision: deadline enforcement, panic capture, bounded retry,
//! and quarantine bookkeeping for the runner.
//!
//! A comparison harness runs thousands of trials across engines it does
//! not control; one wedged or crashing kernel must not take the whole
//! sweep down. [`supervise_trial`] wraps a single kernel invocation with:
//!
//! - **deadline enforcement** — a [`CancelToken`] with the per-trial
//!   budget is attached to the pool; engines poll it at chunk boundaries
//!   and iteration tops, so an over-budget trial unwinds cooperatively
//!   with its partial counters intact (no watchdog thread, no `kill`);
//! - **panic capture** — `catch_unwind` turns an engine panic into a
//!   classified [`TrialOutcome::Panicked`] instead of aborting the sweep;
//! - **bounded retry** — transient failures (panics, wrong results caught
//!   by a verifier) are retried with doubling backoff up to `max_retries`;
//! - **quarantine** — the runner counts consecutive failures per
//!   engine×algorithm cell through [`QuarantineBook`] and stops scheduling
//!   a cell after `quarantine_after` in a row, recording the remaining
//!   trials as [`TrialOutcome::Quarantined`] (did-not-finish, never run).
//!
//! Timeouts are *not* retried: a trial that blows its budget once will
//! blow it again, and the partial counters are themselves a result (the
//! censored statistics in [`crate::stats`] know how to use them).

use epg_engine_api::RunOutput;
use epg_parallel::{CancelToken, ThreadPool};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// How a supervised trial ended. `Ok` is the only outcome whose timing
/// belongs in the performance statistics; the other three are
/// did-not-finish (DNF) classifications.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The trial completed within budget and (if verified) correctly.
    #[default]
    Ok,
    /// The trial exceeded its budget and was cooperatively cancelled;
    /// partial counters survive in the report's `output`.
    Timeout,
    /// The trial panicked (or kept producing wrong results) through every
    /// allowed attempt.
    Panicked,
    /// The trial was never run: its engine×algorithm cell had already
    /// failed `quarantine_after` consecutive times.
    Quarantined,
}

impl TrialOutcome {
    /// Stable lowercase label used in CSV rows and trace events.
    pub fn label(self) -> &'static str {
        match self {
            TrialOutcome::Ok => "ok",
            TrialOutcome::Timeout => "timeout",
            TrialOutcome::Panicked => "panicked",
            TrialOutcome::Quarantined => "quarantined",
        }
    }

    /// Parses a [`label`](Self::label) back; `None` for anything else.
    pub fn from_label(s: &str) -> Option<TrialOutcome> {
        match s {
            "ok" => Some(TrialOutcome::Ok),
            "timeout" => Some(TrialOutcome::Timeout),
            "panicked" => Some(TrialOutcome::Panicked),
            "quarantined" => Some(TrialOutcome::Quarantined),
            _ => None,
        }
    }

    /// Did-not-finish: everything except `Ok`.
    pub fn is_dnf(self) -> bool {
        self != TrialOutcome::Ok
    }
}

/// Supervision policy knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Per-trial wall-clock budget; `None` disables deadline enforcement
    /// (the default — measurement runs must not poll a live deadline).
    pub trial_budget: Option<Duration>,
    /// Extra attempts after a transient failure (panic or verify-fail).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles per subsequent attempt.
    pub backoff: Duration,
    /// Consecutive failures before an engine×algorithm cell is skipped.
    pub quarantine_after: u32,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            trial_budget: None,
            max_retries: 1,
            backoff: Duration::from_millis(5),
            quarantine_after: 3,
        }
    }
}

/// What [`supervise_trial`] hands back to the runner.
#[derive(Debug)]
pub struct TrialReport {
    /// Classification of the (final) attempt.
    pub outcome: TrialOutcome,
    /// Wall-clock seconds of the final attempt (including a timed-out
    /// one — it is the censoring time, not a performance sample).
    pub seconds: f64,
    /// Attempts consumed (1 = no retry was needed).
    pub attempts: u32,
    /// The engine's output. Present for `Ok` and for `Timeout` (partial
    /// counters); absent when every attempt panicked.
    pub output: Option<RunOutput>,
    /// Panic payload (or verifier complaint) from the last failed attempt.
    pub error: Option<String>,
}

/// Runs one trial under supervision. `run` is invoked up to
/// `1 + cfg.max_retries` times; `verify`, when given, can reject a
/// completed output as wrong (counted like a panic, i.e. retried).
///
/// The pool's cancel token is installed before each attempt and always
/// cleared afterwards, including on unwind.
pub fn supervise_trial(
    pool: &ThreadPool,
    cfg: &SupervisorConfig,
    mut run: impl FnMut() -> RunOutput,
    verify: Option<&dyn Fn(&RunOutput) -> bool>,
) -> TrialReport {
    let mut backoff = cfg.backoff;
    let attempts_allowed = 1 + cfg.max_retries;
    for attempt in 1..=attempts_allowed {
        let token = CancelToken::new();
        if let Some(budget) = cfg.trial_budget {
            token.set_deadline(budget);
        }
        pool.set_cancel_token(Some(token.clone()));
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(&mut run));
        let seconds = t0.elapsed().as_secs_f64();
        pool.set_cancel_token(None);
        let failure = match result {
            Ok(out) => {
                if out.cancelled || token.is_cancelled() {
                    // Deterministic failure: a trial over budget stays over
                    // budget. Keep the partial counters, do not retry.
                    return TrialReport {
                        outcome: TrialOutcome::Timeout,
                        seconds,
                        attempts: attempt,
                        output: Some(out),
                        error: None,
                    };
                }
                match verify {
                    Some(check) if !check(&out) => "result failed verification".to_string(),
                    _ => {
                        return TrialReport {
                            outcome: TrialOutcome::Ok,
                            seconds,
                            attempts: attempt,
                            output: Some(out),
                            error: None,
                        };
                    }
                }
            }
            Err(payload) => panic_message(payload.as_ref()),
        };
        if attempt < attempts_allowed {
            std::thread::sleep(backoff);
            backoff *= 2;
        } else {
            return TrialReport {
                outcome: TrialOutcome::Panicked,
                seconds,
                attempts: attempt,
                output: None,
                error: Some(failure),
            };
        }
    }
    unreachable!("loop always returns on its final attempt")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Consecutive-failure ledger for one experiment: the runner consults it
/// before each trial and reports each outcome back.
#[derive(Debug, Default)]
pub struct QuarantineBook {
    cells: Vec<(String, u32)>,
}

impl QuarantineBook {
    /// An empty ledger.
    pub fn new() -> QuarantineBook {
        QuarantineBook::default()
    }

    /// Whether `cell` (an engine×algorithm key) has hit the threshold.
    pub fn is_quarantined(&self, cell: &str, threshold: u32) -> bool {
        threshold > 0 && self.cells.iter().any(|(c, n)| c == cell && *n >= threshold)
    }

    /// Records an outcome; `Ok` resets the consecutive-failure count,
    /// every DNF outcome bumps it.
    pub fn record(&mut self, cell: &str, outcome: TrialOutcome) {
        let count = match self.cells.iter_mut().find(|(c, _)| c == cell) {
            Some((_, n)) => n,
            None => {
                self.cells.push((cell.to_string(), 0));
                &mut self.cells.last_mut().expect("just pushed").1
            }
        };
        if outcome.is_dnf() {
            *count += 1;
        } else {
            *count = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epg_engine_api::{AlgorithmResult, Counters, Trace};

    fn ok_output() -> RunOutput {
        RunOutput::new(AlgorithmResult::Triangles(7), Counters::default(), Trace::default())
    }

    #[test]
    fn clean_trial_is_ok_first_attempt() {
        let pool = ThreadPool::new(1);
        let rep = supervise_trial(&pool, &SupervisorConfig::default(), ok_output, None);
        assert_eq!(rep.outcome, TrialOutcome::Ok);
        assert_eq!(rep.attempts, 1);
        assert!(rep.output.is_some());
        assert!(pool.cancel_token().is_none(), "token must be cleared");
    }

    #[test]
    fn panic_is_captured_and_retried_to_success() {
        let pool = ThreadPool::new(1);
        let mut calls = 0;
        let rep = supervise_trial(
            &pool,
            &SupervisorConfig { max_retries: 2, ..Default::default() },
            || {
                calls += 1;
                if calls == 1 {
                    panic!("transient");
                }
                ok_output()
            },
            None,
        );
        assert_eq!(rep.outcome, TrialOutcome::Ok);
        assert_eq!(rep.attempts, 2);
    }

    #[test]
    fn persistent_panic_exhausts_retries() {
        let pool = ThreadPool::new(1);
        let cfg = SupervisorConfig {
            max_retries: 2,
            backoff: Duration::from_micros(10),
            ..Default::default()
        };
        let rep = supervise_trial(&pool, &cfg, || panic!("always"), None);
        assert_eq!(rep.outcome, TrialOutcome::Panicked);
        assert_eq!(rep.attempts, 3);
        assert_eq!(rep.error.as_deref(), Some("always"));
        assert!(rep.output.is_none());
        assert!(pool.cancel_token().is_none(), "token cleared even after panics");
    }

    #[test]
    fn cancelled_output_is_a_timeout_and_keeps_partial_counters() {
        let pool = ThreadPool::new(1);
        let mut calls = 0;
        let cfg = SupervisorConfig {
            trial_budget: Some(Duration::from_secs(60)),
            max_retries: 5,
            ..Default::default()
        };
        let rep = supervise_trial(
            &pool,
            &cfg,
            || {
                calls += 1;
                let counters = Counters { edges_traversed: 123, ..Default::default() };
                RunOutput::new(AlgorithmResult::Triangles(0), counters, Trace::default())
                    .cancelled(true)
            },
            None,
        );
        assert_eq!(rep.outcome, TrialOutcome::Timeout);
        assert_eq!(calls, 1, "timeouts are never retried");
        assert_eq!(rep.output.unwrap().counters.edges_traversed, 123);
    }

    #[test]
    fn wrong_result_is_retried_then_panicked_when_persistent() {
        let pool = ThreadPool::new(1);
        let cfg = SupervisorConfig {
            max_retries: 1,
            backoff: Duration::from_micros(10),
            ..Default::default()
        };
        let reject = |_: &RunOutput| false;
        let rep = supervise_trial(&pool, &cfg, ok_output, Some(&reject));
        assert_eq!(rep.outcome, TrialOutcome::Panicked);
        assert_eq!(rep.attempts, 2);
        assert_eq!(rep.error.as_deref(), Some("result failed verification"));
    }

    #[test]
    fn deadline_budget_is_installed_on_the_pool() {
        let pool = ThreadPool::new(1);
        let cfg = SupervisorConfig {
            trial_budget: Some(Duration::from_secs(3600)),
            ..Default::default()
        };
        let mut seen_remaining = None;
        let rep = supervise_trial(
            &pool,
            &cfg,
            || {
                seen_remaining = pool.cancel_token().and_then(|t| t.remaining());
                ok_output()
            },
            None,
        );
        assert_eq!(rep.outcome, TrialOutcome::Ok);
        let rem = seen_remaining.expect("deadline visible inside the trial");
        assert!(rem <= Duration::from_secs(3600) && rem > Duration::from_secs(3500));
    }

    #[test]
    fn outcome_labels_round_trip() {
        for o in [
            TrialOutcome::Ok,
            TrialOutcome::Timeout,
            TrialOutcome::Panicked,
            TrialOutcome::Quarantined,
        ] {
            assert_eq!(TrialOutcome::from_label(o.label()), Some(o));
            assert_eq!(o.is_dnf(), o != TrialOutcome::Ok);
        }
        assert_eq!(TrialOutcome::from_label("dnf"), None);
    }

    #[test]
    fn quarantine_book_counts_consecutive_failures_only() {
        let mut book = QuarantineBook::new();
        book.record("gap/bfs", TrialOutcome::Panicked);
        book.record("gap/bfs", TrialOutcome::Timeout);
        assert!(!book.is_quarantined("gap/bfs", 3));
        book.record("gap/bfs", TrialOutcome::Ok); // resets
        book.record("gap/bfs", TrialOutcome::Panicked);
        book.record("gap/bfs", TrialOutcome::Panicked);
        book.record("gap/bfs", TrialOutcome::Panicked);
        assert!(book.is_quarantined("gap/bfs", 3));
        // Other cells are independent.
        assert!(!book.is_quarantined("gap/pr", 3));
        // Threshold 0 disables quarantine entirely.
        assert!(!book.is_quarantined("gap/bfs", 0));
    }
}
