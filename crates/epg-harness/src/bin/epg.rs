//! The `epg` command-line interface: "each of which requires no more than
//! a single shell command" (§III).
//!
//! ```text
//! epg setup                         # phase 1: list the homogenized engines
//! epg gen   --scale 14 [--weighted] # phase 2: generate + homogenize
//! epg run   --scale 14 --threads 2  # phase 3 (also runs 2 if needed)
//! epg run   --sssp-kernel radix     # pick the GAP SSSP kernel (delta|radix|bmssp)
//! epg all   --scale 14              # phases 2-5
//! epg graphalytics --scale 12       # the comparator + HTML report
//! epg bench --json [--quick]        # ingest pipeline medians -> BENCH_ingest.json
//! epg bench --json --baseline BENCH_ingest.json [--gate]
//!                                   # compare speedups vs a snapshot; --gate fails on regression
//! epg serve --scale 14 [--listen ADDR] [--landmarks N]
//!                                   # resident-graph query service (stdio or TCP line protocol)
//! epg serve-bench --json [--quick] [--check]
//!                                   # naive-vs-served QPS + latency percentiles -> BENCH_serve.json
//! epg trace summarize --input F     # summarize a *.trace.jsonl file
//! epg lint [--json] [--strict]      # workspace static analysis (DESIGN.md §10-§11)
//! epg lint --explain <rule-id>      # rationale + example + fix for one rule
//! ```

use epg_generator::GraphSpec;
use epg_harness::dataset::Dataset;
use epg_harness::graphalytics;
use epg_harness::pipeline::Pipeline;
use epg_harness::runner::ExperimentConfig;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    cmd: String,
    subcmd: Option<String>,
    scale: u32,
    weighted: bool,
    threads: usize,
    roots: Option<usize>,
    seed: u64,
    out: PathBuf,
    snap_file: Option<PathBuf>,
    input: Option<PathBuf>,
    trial_budget_ms: Option<u64>,
    json: bool,
    quick: bool,
    strict: bool,
    gate: bool,
    baseline: Option<PathBuf>,
    explain: Option<String>,
    root: Option<PathBuf>,
    sssp_kernel: Option<epg_engine_api::SsspKernel>,
    check: bool,
    landmarks: Option<usize>,
    listen: Option<String>,
}

fn parse_args(argv: std::env::Args) -> Result<Args, String> {
    let mut argv = argv;
    let _bin = argv.next();
    let cmd = argv.next().ok_or_else(usage)?;
    let subcmd = if cmd == "trace" {
        Some(argv.next().ok_or("trace needs a subcommand: summarize")?)
    } else {
        None
    };
    let mut a = Args {
        cmd,
        subcmd,
        scale: 12,
        weighted: true,
        threads: 1,
        roots: Some(8),
        seed: 42,
        out: PathBuf::from("target/epg-out"),
        snap_file: None,
        input: None,
        trial_budget_ms: None,
        json: false,
        quick: false,
        strict: false,
        gate: false,
        baseline: None,
        explain: None,
        root: None,
        sssp_kernel: None,
        check: false,
        landmarks: None,
        listen: None,
    };
    let mut it = argv.peekable();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or(format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--scale" => a.scale = val("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--threads" => {
                a.threads = val("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--roots" => {
                a.roots = Some(val("--roots")?.parse().map_err(|e| format!("--roots: {e}"))?)
            }
            "--all-roots" => a.roots = None,
            "--seed" => a.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => a.out = PathBuf::from(val("--out")?),
            "--weighted" => a.weighted = true,
            "--unweighted" => a.weighted = false,
            "--json" => a.json = true,
            "--quick" => a.quick = true,
            "--strict" => a.strict = true,
            "--gate" => a.gate = true,
            "--baseline" => a.baseline = Some(PathBuf::from(val("--baseline")?)),
            "--explain" => a.explain = Some(val("--explain")?),
            "--root" => a.root = Some(PathBuf::from(val("--root")?)),
            "--sssp-kernel" => {
                let name = val("--sssp-kernel")?;
                a.sssp_kernel =
                    Some(epg_engine_api::SsspKernel::from_name(&name).ok_or_else(|| {
                        let names: Vec<&str> =
                            epg_engine_api::SsspKernel::ALL.iter().map(|k| k.name()).collect();
                        format!(
                            "--sssp-kernel: unknown kernel `{name}` (one of: {})",
                            names.join(", ")
                        )
                    })?);
            }
            "--check" => a.check = true,
            "--landmarks" => {
                a.landmarks =
                    Some(val("--landmarks")?.parse().map_err(|e| format!("--landmarks: {e}"))?)
            }
            "--listen" => a.listen = Some(val("--listen")?),
            "--snap" => a.snap_file = Some(PathBuf::from(val("--snap")?)),
            "--input" => a.input = Some(PathBuf::from(val("--input")?)),
            "--trial-budget-ms" => {
                a.trial_budget_ms = Some(
                    val("--trial-budget-ms")?
                        .parse()
                        .map_err(|e| format!("--trial-budget-ms: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag: {other}\n{}", usage())),
        }
    }
    Ok(a)
}

fn usage() -> String {
    "usage: epg <setup|gen|run|all|graphalytics|granula|bench|serve|serve-bench|\
     trace summarize|lint> \
     [--scale N] [--weighted|--unweighted] [--threads N] [--roots N|--all-roots] \
     [--seed N] [--out DIR] [--snap FILE] [--input FILE] [--trial-budget-ms N] \
     [--json] [--quick] [--strict] [--gate] [--baseline FILE] [--explain RULE] [--root DIR] \
     [--sssp-kernel delta|radix|bmssp] [--check] [--landmarks N] [--listen ADDR]"
        .to_string()
}

/// Parses the baseline snapshot, gates the candidate report against it,
/// prints the outcome, and (with `--gate`) fails the run on regression.
/// Shared by `epg bench` and `epg serve-bench` — both report schemas go
/// through the same [`epg_harness::benchgate`] door.
fn gate_against_baseline(
    candidate_json: &str,
    baseline_path: &std::path::Path,
    hard_gate: bool,
) -> Result<(), String> {
    use epg_harness::benchgate;
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let baseline = benchgate::ParsedReport::from_json(&baseline_text)
        .map_err(|e| format!("baseline {}: {e}", baseline_path.display()))?;
    let candidate = benchgate::ParsedReport::from_json(candidate_json)
        .map_err(|e| format!("candidate report: {e}"))?;
    let outcome = benchgate::gate(&candidate, &baseline, benchgate::DEFAULT_TOLERANCE);
    print!("{}", outcome.render());
    // Without --gate this is a report-only comparison; with it, a
    // regression fails the run (CI exit code).
    if hard_gate && outcome.is_failure() {
        return Err(format!("bench gate failed against {}", baseline_path.display()));
    }
    Ok(())
}

fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}ms"),
        None => "censored".to_string(),
    }
}

fn dataset_for(args: &Args, pipeline: &Pipeline) -> Result<Dataset, String> {
    if let Some(path) = &args.snap_file {
        let ds = Dataset::from_snap_file(path, args.seed).map_err(|e| e.to_string())?;
        ds.write_files(&pipeline.out_dir.join("datasets")).map_err(|e| e.to_string())?;
        Ok(ds)
    } else {
        let spec =
            GraphSpec::Kronecker { scale: args.scale, edge_factor: 16, weighted: args.weighted };
        pipeline.homogenize(&spec, args.seed).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("epg: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args = parse_args(std::env::args())?;
    if args.cmd == "lint" {
        // Static analysis needs no pipeline state (and must not create the
        // out directory); it prints its own report and owns the exit code:
        // 0 clean, 1 findings, 2 config error, 3 stale exceptions under
        // --strict (the facade passes run_lint's code through verbatim).
        if let Some(id) = &args.explain {
            match epg_lint::explain::lookup(id) {
                Some(doc) => {
                    print!("{}", epg_lint::explain::render(doc));
                    std::process::exit(0);
                }
                None => {
                    eprintln!("epg: unknown rule `{id}`");
                    eprintln!("rules: {}", epg_lint::explain::rule_ids().join(", "));
                    std::process::exit(2);
                }
            }
        }
        let opts = epg_lint::LintOptions {
            json: args.json,
            strict: args.strict,
            baseline: args.baseline.clone(),
        };
        let root = args.root.clone().unwrap_or_else(epg_lint::workspace_root);
        std::process::exit(epg_lint::run_lint(&root, &opts));
    }
    let pipeline = Pipeline::new(args.out.clone()).map_err(|e| e.to_string())?;
    match args.cmd.as_str() {
        "setup" => {
            print!("{}", pipeline.setup_report());
        }
        "gen" => {
            let ds = dataset_for(&args, &pipeline)?;
            println!(
                "homogenized '{}': {} vertices, {} edges (weighted: {}), 32 roots sampled",
                ds.name,
                ds.raw.num_vertices,
                ds.raw.num_edges(),
                ds.weighted
            );
            println!("files in {}", pipeline.out_dir.join("datasets").display());
            print!("{}", epg_graph::analysis::GraphProfile::of(&ds.raw).to_text());
        }
        "run" | "all" => {
            let ds = dataset_for(&args, &pipeline)?;
            let mut cfg = ExperimentConfig {
                threads: args.threads,
                max_roots: args.roots,
                sssp_kernel: args.sssp_kernel,
                ..ExperimentConfig::new()
            };
            // Per-trial wall-clock budget: over-budget trials are reaped
            // cooperatively and reported as DNF (timeout) rows.
            cfg.supervisor.trial_budget =
                args.trial_budget_ms.map(std::time::Duration::from_millis);
            eprintln!(
                "running {} engines x {} algorithms on '{}' ({} threads)...",
                cfg.engines.len(),
                cfg.algorithms.len(),
                ds.name,
                cfg.threads
            );
            let result = pipeline.run(cfg, &ds);
            let csv = pipeline.parse(&result).map_err(|e| e.to_string())?;
            println!("wrote {}", csv.display());
            if args.cmd == "all" {
                for p in pipeline.analyze(&result, &ds).map_err(|e| e.to_string())? {
                    println!("wrote {}", p.display());
                }
            }
        }
        "granula" => {
            // Granula-style operation charts for every engine on one BFS run.
            let ds = dataset_for(&args, &pipeline)?;
            let cfg = ExperimentConfig {
                threads: args.threads,
                max_roots: Some(1),
                ..ExperimentConfig::new()
            };
            let result = pipeline.run(cfg, &ds);
            for p in pipeline.analyze(&result, &ds).map_err(|e| e.to_string())? {
                if p.to_string_lossy().contains("granula") {
                    println!("--- {} ---", p.display());
                    print!("{}", std::fs::read_to_string(&p).map_err(|e| e.to_string())?);
                }
            }
        }
        "graphalytics" => {
            let ds = dataset_for(&args, &pipeline)?;
            let cells = graphalytics::run_graphalytics(
                &graphalytics::GRAPHALYTICS_ENGINES,
                &graphalytics::TABLE1_ALGOS,
                &ds,
                args.threads,
            );
            print!(
                "{}",
                graphalytics::format_table(
                    &cells,
                    &graphalytics::GRAPHALYTICS_ENGINES,
                    std::slice::from_ref(&ds.name)
                )
            );
            let html_dir = pipeline.out_dir.join("graphalytics");
            std::fs::create_dir_all(&html_dir).map_err(|e| e.to_string())?;
            for k in graphalytics::GRAPHALYTICS_ENGINES {
                let path = html_dir.join(format!("{}.html", k.name()));
                std::fs::write(&path, graphalytics::html_report(k, &cells))
                    .map_err(|e| e.to_string())?;
                println!("wrote {}", path.display());
            }
        }
        "bench" => {
            use epg_harness::ingestbench;
            if args.gate && args.baseline.is_none() {
                return Err("--gate needs --baseline FILE (the committed snapshot)".to_string());
            }
            let mut cfg = if args.quick {
                ingestbench::IngestBenchConfig::quick()
            } else {
                ingestbench::IngestBenchConfig::full()
            };
            cfg.seed = args.seed;
            eprintln!(
                "ingest bench: kronecker scale {} x{} edges, {} trials, threads {:?}...",
                cfg.scale, cfg.edge_factor, cfg.trials, cfg.threads
            );
            let report = ingestbench::run_ingest_bench(&cfg);
            for p in &report.phases {
                let per: Vec<String> =
                    p.per_thread.iter().map(|&(t, m)| format!("t={t}: {m:.5}s")).collect();
                println!("{:<12} serial {:.5}s | {}", p.phase, p.serial_median_s, per.join(" | "));
            }
            let json = report.to_json();
            if args.json {
                ingestbench::validate_report_json(&json)
                    .map_err(|e| format!("generated JSON failed validation: {e}"))?;
                let path = args.out.join("BENCH_ingest.json");
                std::fs::write(&path, &json).map_err(|e| e.to_string())?;
                println!("wrote {}", path.display());
            }
            if let Some(baseline_path) = &args.baseline {
                gate_against_baseline(&json, baseline_path, args.gate)?;
            }
        }
        "serve" => {
            use epg_engine_api::Engine as _;
            use std::sync::Arc;
            let ds = dataset_for(&args, &pipeline)?;
            let pool = Arc::new(epg_parallel::ThreadPool::new(args.threads));
            let mut engine = epg_engine_gap::GapEngine::new();
            engine.load_edge_list(&ds.raw);
            engine.construct(&pool);
            let config = epg_serve::ServeConfig {
                landmarks: args.landmarks.unwrap_or(0),
                ..epg_serve::ServeConfig::default()
            };
            let svc =
                Arc::new(epg_serve::ServeService::new(Arc::new(engine.into_query()), pool, config));
            eprintln!(
                "serving '{}' resident ({} vertices, {} threads); \
                 protocol: bfs S T | sssp S T | pr V | stats | quit",
                ds.name, ds.raw.num_vertices, args.threads
            );
            if let Some(addr) = &args.listen {
                let listener = std::net::TcpListener::bind(addr)
                    .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
                eprintln!("listening on {addr} (one session per connection)");
                for conn in listener.incoming() {
                    let stream = conn.map_err(|e| e.to_string())?;
                    let svc = Arc::clone(&svc);
                    std::thread::spawn(move || {
                        let peer = stream
                            .peer_addr()
                            .map(|p| p.to_string())
                            .unwrap_or_else(|_| "?".to_string());
                        let reader = match stream.try_clone() {
                            Ok(s) => std::io::BufReader::new(s),
                            Err(e) => {
                                eprintln!("session {peer}: {e}");
                                return;
                            }
                        };
                        match epg_serve::session::serve_session(&svc, reader, stream) {
                            Ok(s) => eprintln!(
                                "session {peer}: {} request(s), {} answered",
                                s.requests, s.answered
                            ),
                            Err(e) => eprintln!("session {peer}: {e}"),
                        }
                    });
                }
            } else {
                let s = epg_serve::session::serve_session(
                    &svc,
                    std::io::stdin().lock(),
                    std::io::stdout().lock(),
                )
                .map_err(|e| e.to_string())?;
                eprintln!("session over: {} request(s), {} answered", s.requests, s.answered);
            }
        }
        "serve-bench" => {
            use epg_harness::servebench;
            if args.gate && args.baseline.is_none() {
                return Err("--gate needs --baseline FILE (the committed snapshot)".to_string());
            }
            let mut cfg = if args.quick {
                servebench::ServeBenchConfig::quick()
            } else {
                servebench::ServeBenchConfig::full()
            };
            cfg.seed = args.seed;
            cfg.check = args.check;
            if let Some(l) = args.landmarks {
                cfg.landmarks = l;
            }
            eprintln!(
                "serve bench: kronecker scale {} x{} edges, {} requests, {} clients, \
                 {} hot sources{}...",
                cfg.scale,
                cfg.edge_factor,
                cfg.requests,
                cfg.clients,
                cfg.source_pool,
                if cfg.check { ", oracle check on" } else { "" }
            );
            let report = servebench::run_serve_bench(&cfg);
            for m in [&report.naive, &report.served] {
                println!(
                    "{:<7} {:>8.1} qps | p50 {} p99 {} p999 {} | \
                     exact {} batched {} cached {} landmark {}{}",
                    m.mode,
                    m.qps,
                    fmt_ms(m.p50_ms),
                    fmt_ms(m.p99_ms),
                    fmt_ms(m.p999_ms),
                    m.exact,
                    m.batched,
                    m.cached,
                    m.landmark,
                    match m.wrong_answers {
                        Some(w) => format!(" | wrong {w}"),
                        None => String::new(),
                    }
                );
            }
            println!("qps speedup (served / naive): {:.2}x", report.qps_speedup);
            let json = report.to_json();
            if args.json {
                servebench::validate_report_json(&json)
                    .map_err(|e| format!("generated JSON failed validation: {e}"))?;
                let path = args.out.join("BENCH_serve.json");
                std::fs::write(&path, &json).map_err(|e| e.to_string())?;
                println!("wrote {}", path.display());
            }
            if let Some(baseline_path) = &args.baseline {
                gate_against_baseline(&json, baseline_path, args.gate)?;
            }
            if args.check {
                let wrong = report.naive.wrong_answers.unwrap_or(0)
                    + report.served.wrong_answers.unwrap_or(0);
                if wrong > 0 {
                    return Err(format!("{wrong} answer(s) disagreed with the sequential oracles"));
                }
            }
        }
        "trace" => match args.subcmd.as_deref() {
            Some("summarize") => {
                let path =
                    args.input.as_ref().ok_or("trace summarize needs --input FILE".to_string())?;
                let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
                print!("{}", epg_harness::tracefile::summarize(&text));
            }
            other => {
                return Err(format!(
                    "unknown trace subcommand: {}\n{}",
                    other.unwrap_or(""),
                    usage()
                ))
            }
        },
        "--help" | "help" => println!("{}", usage()),
        other => return Err(format!("unknown command: {other}\n{}", usage())),
    }
    Ok(())
}
