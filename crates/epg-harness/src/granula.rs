//! Granula-style fine-grained performance modeling.
//!
//! §II: "With a plugin to Graphalytics called Granula, one can explicitly
//! specify a performance model to analyze specific execution behavior such
//! as the amount of communication or runtime of particular kernels of
//! execution." Our equivalent builds an *operation chart* from the
//! harness's phase timings plus the engine's execution trace: a hierarchy
//! of phases, and within the kernel phase a region-level breakdown
//! (parallel/serial, work, memory traffic, binding constraint under the
//! machine model) — without requiring any knowledge of engine source code,
//! which is the advantage the paper claims over Granula.

use epg_engine_api::{Phase, Trace};
use epg_machine::MachineModel;
use std::fmt::Write as _;

/// One row of the operation chart.
#[derive(Clone, Debug, PartialEq)]
pub struct OperationRow {
    /// Nesting depth (0 = phase, 1 = region group).
    pub depth: usize,
    /// Row label.
    pub label: String,
    /// Seconds attributed to this operation.
    pub seconds: f64,
    /// Fraction of the total run.
    pub fraction: f64,
}

/// The chart: rows in execution order.
#[derive(Clone, Debug, Default)]
pub struct OperationChart {
    /// Rows, phases first.
    pub rows: Vec<OperationRow>,
}

impl OperationChart {
    /// Builds a chart from measured phase times plus the kernel's trace.
    /// The kernel phase is decomposed by the machine model at `threads`
    /// target threads using the calibrated `rate`.
    pub fn build(
        phases: &[(Phase, f64)],
        trace: &Trace,
        model: &MachineModel,
        rate: f64,
        threads: usize,
    ) -> OperationChart {
        let total: f64 = phases.iter().map(|&(_, s)| s).sum();
        let mut rows = Vec::new();
        for &(phase, secs) in phases {
            rows.push(OperationRow {
                depth: 0,
                label: phase.label().to_string(),
                seconds: secs,
                fraction: if total > 0.0 { secs / total } else { 0.0 },
            });
            if phase != Phase::Run {
                continue;
            }
            // Decompose the kernel by its trace under the machine model.
            let proj = model.project(trace, rate, threads);
            let breakdown = [
                ("compute-bound regions", proj.compute_s),
                ("memory-bound regions", proj.memory_s),
                ("span-bound regions (stragglers)", proj.span_s),
                ("synchronization (barriers/joins)", proj.sync_s),
            ];
            for (label, s) in breakdown {
                rows.push(OperationRow {
                    depth: 1,
                    label: label.to_string(),
                    seconds: s,
                    fraction: if proj.total_s > 0.0 { s / proj.total_s } else { 0.0 },
                });
            }
            rows.push(OperationRow {
                depth: 1,
                label: format!(
                    "serial fraction of work (Amdahl): {:.2}%",
                    trace.serial_fraction() * 100.0
                ),
                seconds: 0.0,
                fraction: trace.serial_fraction(),
            });
        }
        OperationChart { rows }
    }

    /// Renders the chart as aligned text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<44}{:>12}{:>8}", "operation", "seconds", "%");
        for r in &self.rows {
            let indent = "  ".repeat(r.depth);
            let _ = writeln!(
                out,
                "{:<44}{:>12.6}{:>7.1}%",
                format!("{indent}{}", r.label),
                r.seconds,
                r.fraction * 100.0
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> OperationChart {
        let mut trace = Trace::default();
        trace.parallel(1_000_000, 100, 2_000);
        trace.serial(50_000, 100);
        let phases = [
            (Phase::ReadFile, 0.5),
            (Phase::Construct, 1.0),
            (Phase::Run, 0.25),
            (Phase::Output, 0.05),
        ];
        OperationChart::build(&phases, &trace, &MachineModel::paper_machine(), 1e8, 32)
    }

    #[test]
    fn phases_plus_kernel_breakdown() {
        let chart = sample_chart();
        let phase_rows: Vec<_> = chart.rows.iter().filter(|r| r.depth == 0).collect();
        assert_eq!(phase_rows.len(), 4);
        // Kernel breakdown nested under Run.
        let nested: Vec<_> = chart.rows.iter().filter(|r| r.depth == 1).collect();
        assert!(nested.len() >= 4);
        // Fractions of phases sum to 1.
        let sum: f64 = phase_rows.iter().map(|r| r.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_breakdown_sums_to_projection() {
        let chart = sample_chart();
        let nested_time: f64 = chart.rows.iter().filter(|r| r.depth == 1).map(|r| r.seconds).sum();
        let mut trace = Trace::default();
        trace.parallel(1_000_000, 100, 2_000);
        trace.serial(50_000, 100);
        let proj = MachineModel::paper_machine().project(&trace, 1e8, 32);
        assert!((nested_time - proj.total_s).abs() < 1e-9);
    }

    #[test]
    fn text_rendering_contains_all_rows() {
        let chart = sample_chart();
        let text = chart.to_text();
        assert!(text.contains("read_file"));
        assert!(text.contains("construct"));
        assert!(text.contains("compute-bound"));
        assert!(text.contains("Amdahl"));
    }
}
