//! Phase 2: the dataset homogenizer.
//!
//! "Homogenizing the datasets creates copies of the graph files and
//! auxiliary files in various formats ... to ensure they are correctly
//! formatted for each system and to speed up file I/O whenever possible by
//! using the library designer's serialized data structure file formats"
//! (§III-B). Concretely:
//!
//! - duplicate edges and self-loops are removed (the systems disagree on
//!   multigraph semantics — GraphMat's matrix cannot represent parallel
//!   edges — so fairness requires a simple graph);
//! - a **symmetrized** copy serves the shared-memory engines (the paper's
//!   experiments treat graphs as undirected); Graph500 receives the raw
//!   directed list because its construction kernel symmetrizes itself;
//! - both SNAP text (GraphBIG streams text) and the compact binary format
//!   (everything else) are written.

use crate::registry::EngineKind;
use epg_generator::GraphSpec;
use epg_graph::{degree, snap, EdgeList, VertexId};
use std::io;
use std::path::{Path, PathBuf};

/// A fully-materialized workload: the in-memory edge lists plus the
/// on-disk homogenized files.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Short name used in reports and file names.
    pub name: String,
    /// The raw directed, deduplicated edge list.
    pub raw: EdgeList,
    /// The symmetrized, deduplicated edge list most engines consume.
    pub symmetric: EdgeList,
    /// Whether edges carry weights (drives SSSP eligibility).
    pub weighted: bool,
    /// The 32 sampled roots (degree > 1), as in the Graph500 spec.
    pub roots: Vec<VertexId>,
}

/// Number of roots per graph (§III-B: "Each experiment uses 32 roots").
pub const NUM_ROOTS: usize = 32;

impl Dataset {
    /// Generates and homogenizes a synthetic workload.
    pub fn from_spec(spec: &GraphSpec, seed: u64) -> Dataset {
        let raw = spec.generate(seed).deduplicated();
        Dataset::from_edge_list(spec.name(), raw, seed)
    }

    /// Homogenizes an existing edge list (e.g. parsed from a SNAP file —
    /// "any network in the SNAP data format can be used", §III-B).
    pub fn from_edge_list(name: String, raw: EdgeList, seed: u64) -> Dataset {
        let raw = raw.deduplicated();
        let symmetric = raw.symmetrized().deduplicated();
        let weighted = raw.is_weighted();
        let roots = degree::sample_roots(&symmetric, NUM_ROOTS, seed ^ 0x9e3779b97f4a7c15);
        Dataset { name, raw, symmetric, weighted, roots }
    }

    /// Generates and homogenizes a synthetic workload using the pool's
    /// parallel generators where they exist (Kronecker, Uniform). The
    /// result is deterministic per seed regardless of thread count but is a
    /// *different* stream than [`Dataset::from_spec`] — pick one per
    /// experiment and stay with it.
    pub fn from_spec_parallel(
        spec: &GraphSpec,
        seed: u64,
        pool: &epg_parallel::ThreadPool,
    ) -> Dataset {
        let raw = spec.generate_parallel(seed, pool).deduplicated();
        Dataset::from_edge_list(spec.name(), raw, seed)
    }

    /// Loads and homogenizes a SNAP text file from disk.
    pub fn from_snap_file(path: &Path, seed: u64) -> Result<Dataset, snap::ParseError> {
        let raw = snap::read_snap_file(path)?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "dataset".into());
        Ok(Dataset::from_edge_list(name, raw, seed))
    }

    /// Loads and homogenizes a SNAP text file with the parallel zero-copy
    /// scanner ([`epg_graph::ingest`]); identical results and errors to
    /// [`Dataset::from_snap_file`].
    pub fn from_snap_file_parallel(
        path: &Path,
        seed: u64,
        pool: &epg_parallel::ThreadPool,
    ) -> Result<Dataset, snap::ParseError> {
        let raw = epg_graph::ingest::read_snap_file_parallel(path, pool)?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "dataset".into());
        Ok(Dataset::from_edge_list(name, raw, seed))
    }

    /// The edge list an engine should consume.
    pub fn edges_for(&self, kind: EngineKind) -> &EdgeList {
        if kind.wants_raw_edges() {
            &self.raw
        } else {
            &self.symmetric
        }
    }

    /// Writes the homogenized files: SNAP text (for the streaming readers)
    /// and binary (serialized fast path), both raw and symmetrized.
    /// Returns the file paths written.
    pub fn write_files(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let base = dir.join(&self.name);
        let paths = [
            (format!("{}.snap", base.display()), Format::SnapText, false),
            (format!("{}.sym.snap", base.display()), Format::SnapText, true),
            (format!("{}.bin", base.display()), Format::Binary, false),
            (format!("{}.sym.bin", base.display()), Format::Binary, true),
        ];
        for (path, fmt, sym) in paths {
            let el = if sym { &self.symmetric } else { &self.raw };
            let path = PathBuf::from(path);
            match fmt {
                Format::SnapText => snap::write_snap_file(el, &self.name, &path)?,
                Format::Binary => snap::write_binary_file(el, &path)?,
            }
            written.push(path);
        }
        Ok(written)
    }

    /// [`Dataset::write_files`] with the binary copies encoded in parallel
    /// (byte-identical output). The SNAP text writer stays serial — its
    /// cost is formatting-bound and engines never read text on the fast
    /// path (only GraphBIG streams it).
    pub fn write_files_parallel(
        &self,
        dir: &Path,
        pool: &epg_parallel::ThreadPool,
    ) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let base = dir.join(&self.name);
        let paths = [
            (format!("{}.snap", base.display()), Format::SnapText, false),
            (format!("{}.sym.snap", base.display()), Format::SnapText, true),
            (format!("{}.bin", base.display()), Format::Binary, false),
            (format!("{}.sym.bin", base.display()), Format::Binary, true),
        ];
        for (path, fmt, sym) in paths {
            let el = if sym { &self.symmetric } else { &self.raw };
            let path = PathBuf::from(path);
            match fmt {
                Format::SnapText => snap::write_snap_file(el, &self.name, &path)?,
                Format::Binary => epg_graph::ingest::write_binary_file_parallel(el, &path, pool)?,
            }
            written.push(path);
        }
        Ok(written)
    }

    /// The homogenized file an engine loads in file-based runs: GraphBIG
    /// streams SNAP text (openG parses text while building); everything
    /// else uses the serialized binary fast path the homogenizer exists to
    /// provide (§III-B).
    pub fn input_path_for(&self, dir: &Path, kind: EngineKind) -> PathBuf {
        let (sym, ext) = match kind {
            EngineKind::Graph500 => (false, "bin"),
            EngineKind::GraphBig => (true, "snap"),
            _ => (true, "bin"),
        };
        if sym {
            dir.join(format!("{}.sym.{ext}", self.name))
        } else {
            dir.join(format!("{}.{ext}", self.name))
        }
    }
}

enum Format {
    SnapText,
    Binary,
}

/// The paper's standard workloads at a given scale divisor. `div = 1`
/// reproduces the full paper sizes; the default regenerators use a divisor
/// that fits CI-class machines (see DESIGN.md §4).
pub struct PaperDatasets;

impl PaperDatasets {
    /// Kronecker graph of the given scale (Figs. 2-4, Table II: scale 22;
    /// Figs. 5-6: scale 23).
    pub fn kronecker(scale: u32, weighted: bool) -> GraphSpec {
        GraphSpec::Kronecker { scale, edge_factor: 16, weighted }
    }

    /// The cit-Patents stand-in (Table I, Fig. 8).
    pub fn cit_patents(scale_div: u32) -> GraphSpec {
        GraphSpec::CitPatents { scale_div }
    }

    /// The dota-league stand-in (Table I, Fig. 8).
    pub fn dota_league(scale_div: u32) -> GraphSpec {
        let full_v = 61_670usize;
        let full_d = 824u32;
        GraphSpec::DotaLeague {
            num_vertices: (full_v / scale_div as usize).max(64),
            avg_degree: (full_d / scale_div).max(16),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> GraphSpec {
        GraphSpec::Kronecker { scale: 8, edge_factor: 8, weighted: true }
    }

    #[test]
    fn homogenization_dedups_and_symmetrizes() {
        let ds = Dataset::from_spec(&small_spec(), 3);
        // No self loops or duplicates in either copy.
        for el in [&ds.raw, &ds.symmetric] {
            let mut seen = el.edges.clone();
            seen.sort_unstable();
            let n = seen.len();
            seen.dedup();
            assert_eq!(seen.len(), n, "duplicates survived");
            assert!(el.edges.iter().all(|&(u, v)| u != v), "self loop survived");
        }
        // Symmetric copy contains each raw edge both ways.
        let set: std::collections::HashSet<_> = ds.symmetric.edges.iter().copied().collect();
        for &(u, v) in &ds.raw.edges {
            assert!(set.contains(&(u, v)) && set.contains(&(v, u)));
        }
        assert!(ds.weighted);
    }

    #[test]
    fn roots_are_32_distinct_high_degree() {
        let ds = Dataset::from_spec(&small_spec(), 4);
        assert_eq!(ds.roots.len(), NUM_ROOTS);
        let deg = ds.symmetric.total_degrees();
        for &r in &ds.roots {
            assert!(deg[r as usize] > 1);
        }
    }

    #[test]
    fn engine_input_selection() {
        let ds = Dataset::from_spec(&small_spec(), 5);
        assert_eq!(ds.edges_for(EngineKind::Graph500) as *const _, &ds.raw as *const _);
        assert_eq!(ds.edges_for(EngineKind::Gap) as *const _, &ds.symmetric as *const _);
    }

    #[test]
    fn files_roundtrip() {
        let ds = Dataset::from_spec(&small_spec(), 6);
        let dir = std::env::temp_dir().join("epg_dataset_test");
        let written = ds.write_files(&dir).unwrap();
        assert_eq!(written.len(), 4);
        let back = snap::read_binary_file(&ds.input_path_for(&dir, EngineKind::Gap)).unwrap();
        assert_eq!(back, ds.symmetric);
        let raw_back =
            snap::read_binary_file(&ds.input_path_for(&dir, EngineKind::Graph500)).unwrap();
        assert_eq!(raw_back, ds.raw);
        // GraphBIG streams text.
        assert!(ds.input_path_for(&dir, EngineKind::GraphBig).extension().unwrap() == "snap");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snap_file_ingestion() {
        let dir = std::env::temp_dir().join("epg_dataset_snap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("toy.snap");
        std::fs::write(&p, "# toy\n0 1\n1 2\n2 0\n0 1\n").unwrap();
        let ds = Dataset::from_snap_file(&p, 1).unwrap();
        assert_eq!(ds.name, "toy");
        assert_eq!(ds.raw.num_edges(), 3); // duplicate dropped
        assert!(!ds.weighted);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paper_dataset_shapes() {
        let dota = PaperDatasets::dota_league(1);
        if let GraphSpec::DotaLeague { num_vertices, avg_degree } = dota {
            assert_eq!(num_vertices, 61_670);
            assert_eq!(avg_degree, 824);
        } else {
            panic!("wrong spec");
        }
        assert!(!PaperDatasets::cit_patents(64).is_weighted());
        assert!(PaperDatasets::kronecker(22, true).is_weighted());
    }
}
