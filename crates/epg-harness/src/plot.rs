//! Phase 5: the performance visualizer (the R-scripts phase of the
//! original framework), rendering SVG box plots, line charts, and bar
//! charts that mirror the paper's figures.

use crate::stats::Summary;
use std::fmt::Write as _;

/// Axis scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Linear y axis.
    Linear,
    /// Logarithmic y axis (most of the paper's runtime plots).
    Log,
}

const W: f64 = 640.0;
const H: f64 = 420.0;
const ML: f64 = 70.0; // left margin
const MB: f64 = 60.0; // bottom margin
const MT: f64 = 40.0; // top margin
const MR: f64 = 20.0; // right margin

struct YAxis {
    min: f64,
    max: f64,
    scale: Scale,
}

impl YAxis {
    fn project(&self, v: f64) -> f64 {
        let (vmin, vmax, v) = match self.scale {
            Scale::Linear => (self.min, self.max, v),
            Scale::Log => (self.min.ln(), self.max.ln(), v.max(self.min).ln()),
        };
        let frac = if vmax > vmin { (v - vmin) / (vmax - vmin) } else { 0.5 };
        H - MB - frac * (H - MB - MT)
    }
}

fn svg_header(title: &str) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\" font-size=\"12\">\n\
         <rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>\n\
         <text x=\"{}\" y=\"22\" text-anchor=\"middle\" font-size=\"16\">{}</text>\n",
        W / 2.0,
        xml_escape(title)
    )
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn axis_lines(axis: &YAxis, y_label: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<line x1=\"{ML}\" y1=\"{MT}\" x2=\"{ML}\" y2=\"{}\" stroke=\"black\"/>",
        H - MB
    );
    let _ = writeln!(
        out,
        "<line x1=\"{ML}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"black\"/>",
        H - MB,
        W - MR,
        H - MB
    );
    let _ = writeln!(
        out,
        "<text x=\"16\" y=\"{}\" transform=\"rotate(-90 16 {})\" text-anchor=\"middle\">{}</text>",
        (H - MB + MT) / 2.0,
        (H - MB + MT) / 2.0,
        xml_escape(y_label)
    );
    // Tick marks.
    let ticks = match axis.scale {
        Scale::Linear => {
            let mut t = Vec::new();
            for i in 0..=4 {
                t.push(axis.min + (axis.max - axis.min) * i as f64 / 4.0);
            }
            t
        }
        Scale::Log => {
            let mut t = Vec::new();
            let mut v = 10f64.powf(axis.min.log10().floor());
            while v <= axis.max * 1.0001 {
                if v >= axis.min * 0.9999 {
                    t.push(v);
                }
                v *= 10.0;
            }
            if t.is_empty() {
                t.push(axis.min);
                t.push(axis.max);
            }
            t
        }
    };
    for v in ticks {
        let y = axis.project(v);
        let _ = writeln!(
            out,
            "<line x1=\"{}\" y1=\"{y}\" x2=\"{ML}\" y2=\"{y}\" stroke=\"black\"/>\
             <text x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
            ML - 4.0,
            ML - 7.0,
            y + 4.0,
            format_tick(v)
        );
    }
    out
}

fn format_tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 || v.abs() < 0.01 {
        format!("{v:.0e}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders a box plot: one box (five-number summary) per labeled group —
/// the shape of Figs. 2, 3, 4 (left), and 9.
pub fn boxplot(title: &str, y_label: &str, groups: &[(String, Summary)], scale: Scale) -> String {
    assert!(!groups.is_empty(), "no groups to plot");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, s) in groups {
        lo = lo.min(s.min);
        hi = hi.max(s.max);
    }
    if scale == Scale::Log {
        lo = lo.max(1e-12);
    }
    if hi <= lo {
        hi = lo + 1.0;
    }
    let axis = YAxis { min: lo, max: hi, scale };
    let mut out = svg_header(title);
    out.push_str(&axis_lines(&axis, y_label));
    let slot = (W - ML - MR) / groups.len() as f64;
    for (i, (label, s)) in groups.iter().enumerate() {
        let cx = ML + slot * (i as f64 + 0.5);
        let bw = (slot * 0.5).min(60.0);
        let (ymin, yq1, ymed, yq3, ymax) = (
            axis.project(s.min),
            axis.project(s.q1),
            axis.project(s.median),
            axis.project(s.q3),
            axis.project(s.max),
        );
        let _ = writeln!(
            out,
            "<line x1=\"{cx}\" y1=\"{ymin}\" x2=\"{cx}\" y2=\"{yq1}\" stroke=\"black\"/>\
             <line x1=\"{cx}\" y1=\"{yq3}\" x2=\"{cx}\" y2=\"{ymax}\" stroke=\"black\"/>\
             <rect x=\"{}\" y=\"{yq3}\" width=\"{bw}\" height=\"{}\" fill=\"lightsteelblue\" stroke=\"black\"/>\
             <line x1=\"{}\" y1=\"{ymed}\" x2=\"{}\" y2=\"{ymed}\" stroke=\"black\" stroke-width=\"2\"/>\
             <text x=\"{cx}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
            cx - bw / 2.0,
            (yq1 - yq3).max(1.0),
            cx - bw / 2.0,
            cx + bw / 2.0,
            H - MB + 18.0,
            xml_escape(label)
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Renders a multi-series line chart over shared x positions — the shape
/// of Figs. 5 and 6 (speedup / efficiency vs thread count).
pub fn line_chart(
    title: &str,
    y_label: &str,
    x_labels: &[String],
    series: &[(String, Vec<f64>)],
    scale: Scale,
) -> String {
    assert!(!series.is_empty(), "no series to plot");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, ys) in series {
        assert_eq!(ys.len(), x_labels.len(), "series length mismatch");
        for &y in ys {
            lo = lo.min(y);
            hi = hi.max(y);
        }
    }
    if scale == Scale::Log {
        lo = lo.max(1e-12);
    }
    if hi <= lo {
        hi = lo + 1.0;
    }
    let axis = YAxis { min: lo, max: hi, scale };
    let colors = ["black", "crimson", "seagreen", "royalblue", "darkorange", "purple"];
    let mut out = svg_header(title);
    out.push_str(&axis_lines(&axis, y_label));
    let step = (W - ML - MR) / (x_labels.len().max(2) - 1) as f64;
    for (i, lbl) in x_labels.iter().enumerate() {
        let x = ML + step * i as f64;
        let _ = writeln!(
            out,
            "<text x=\"{x}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
            H - MB + 18.0,
            xml_escape(lbl)
        );
    }
    for (si, (name, ys)) in series.iter().enumerate() {
        let color = colors[si % colors.len()];
        let pts: Vec<String> = ys
            .iter()
            .enumerate()
            .map(|(i, &y)| format!("{},{}", ML + step * i as f64, axis.project(y)))
            .collect();
        let _ = writeln!(
            out,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>",
            pts.join(" ")
        );
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"{}\" fill=\"{color}\">{}</text>",
            W - MR - 110.0,
            MT + 16.0 * si as f64,
            xml_escape(name)
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Renders a grouped bar chart — the shape of Figs. 4 (right, iteration
/// counts) and 8 (mean runtimes per dataset and system).
pub fn bar_chart(title: &str, y_label: &str, bars: &[(String, f64)]) -> String {
    assert!(!bars.is_empty(), "no bars to plot");
    let hi = bars.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max).max(1e-12);
    let axis = YAxis { min: 0.0, max: hi, scale: Scale::Linear };
    let mut out = svg_header(title);
    out.push_str(&axis_lines(&axis, y_label));
    let slot = (W - ML - MR) / bars.len() as f64;
    for (i, (label, v)) in bars.iter().enumerate() {
        let x = ML + slot * i as f64 + slot * 0.15;
        let y = axis.project(*v);
        let _ = writeln!(
            out,
            "<rect x=\"{x}\" y=\"{y}\" width=\"{}\" height=\"{}\" fill=\"steelblue\"/>\
             <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">{}</text>",
            slot * 0.7,
            (H - MB - y).max(0.0),
            x + slot * 0.35,
            H - MB + 18.0,
            xml_escape(label)
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(vals: &[f64]) -> Summary {
        Summary::of(vals)
    }

    #[test]
    fn boxplot_contains_all_groups() {
        let svg = boxplot(
            "BFS Time",
            "Time (seconds)",
            &[
                ("GAP".into(), summary(&[0.01, 0.02, 0.05])),
                ("GraphMat".into(), summary(&[1.0, 1.4, 2.0])),
            ],
            Scale::Log,
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("GAP") && svg.contains("GraphMat"));
        assert!(svg.matches("<rect").count() >= 3); // background + 2 boxes
    }

    #[test]
    fn line_chart_has_one_polyline_per_series() {
        let svg = line_chart(
            "BFS Speedup",
            "Speedup",
            &["1".into(), "2".into(), "4".into()],
            &[("Linear".into(), vec![1.0, 2.0, 4.0]), ("GAP".into(), vec![1.0, 1.8, 3.1])],
            Scale::Log,
        );
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn bar_chart_bars_match_input() {
        let svg =
            bar_chart("Iterations", "count", &[("GAP".into(), 24.0), ("GraphMat".into(), 140.0)]);
        assert_eq!(svg.matches("<rect").count(), 3); // background + 2 bars
    }

    #[test]
    fn titles_are_escaped() {
        let svg = bar_chart("a<b & \"c\"", "y", &[("x".into(), 1.0)]);
        assert!(svg.contains("a&lt;b &amp; &quot;c&quot;"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        let _ = line_chart("t", "y", &["1".into()], &[("s".into(), vec![1.0, 2.0])], Scale::Linear);
    }

    #[test]
    fn log_scale_handles_tiny_values() {
        let svg = boxplot("t", "y", &[("a".into(), summary(&[1e-6, 1e-5, 1e-4]))], Scale::Log);
        assert!(svg.contains("</svg>"));
    }
}
