//! The serving benchmark behind `epg serve-bench`: a closed-loop load
//! generator that drives one resident-graph [`epg_serve::ServeService`]
//! with a skewed point-query stream, twice — once in **naive** mode
//! (every request recomputes its traversal) and once with the full
//! pipeline (batching + source cache + landmarks) — and reports the
//! throughput ratio as `qps_speedup`.
//!
//! Both modes see the *identical* request stream (same seed, same
//! client partitioning), so the ratio isolates amortization: on a
//! single-core host it is still meaningful, because the win comes from
//! traversals *not run*, not from threads. Sources are drawn
//! Zipf-style from the graph's highest-degree vertices — the serving
//! workload the ROADMAP describes, where a few hub sources dominate.
//!
//! Latencies are summarized DNF-aware via [`crate::stats::Percentiles`]:
//! rejected/deadline-tripped requests censor the tail instead of
//! silently vanishing from p999. With `check` enabled every answer is
//! compared bit-for-bit against the sequential oracles in
//! [`epg_graph::oracle`]; `wrong_answers` must be zero.

use crate::ingestbench::{parse_json, Json};
use crate::stats::Percentiles;
use epg_engine_api::{Engine as _, QueryEngine};
use epg_engine_gap::GapEngine;
use epg_generator::kronecker::{self, KroneckerConfig};
use epg_graph::{oracle, Csr};
use epg_parallel::ThreadPool;
use epg_serve::{PointQuery, ServeConfig, ServeService};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Schema tag stamped into (and required from) every report.
pub const SCHEMA: &str = "epg-serve-bench/v1";

/// Knobs for one serving-bench run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeBenchConfig {
    /// Kronecker scale (2^scale vertices).
    pub scale: u32,
    /// Edges per vertex of the generator.
    pub edge_factor: u32,
    /// Generate edge weights (enables the SSSP half of the stream).
    pub weighted: bool,
    /// Total point queries per mode.
    pub requests: usize,
    /// Closed-loop client threads issuing them.
    pub clients: usize,
    /// Size of the hot source pool (top-degree vertices).
    pub source_pool: usize,
    /// Landmark rows precomputed by the served mode (0 disables).
    pub landmarks: usize,
    /// Worker threads in the service's pool.
    pub threads: usize,
    /// Stream seed: same seed → same queries, same partitioning.
    pub seed: u64,
    /// Verify every answer against the sequential oracles.
    pub check: bool,
}

impl ServeBenchConfig {
    /// CI-sized run: a small graph, enough requests to exercise every
    /// answer path, seconds of wall clock.
    pub fn quick() -> ServeBenchConfig {
        ServeBenchConfig {
            scale: 8,
            edge_factor: 8,
            weighted: true,
            requests: 120,
            clients: 4,
            source_pool: 6,
            landmarks: 2,
            threads: 1,
            seed: 42,
            check: false,
        }
    }

    /// The committed-snapshot run: scale-18 graph, the workload the
    /// acceptance bar (≥2× QPS from amortization) is measured on.
    pub fn full() -> ServeBenchConfig {
        ServeBenchConfig {
            scale: 18,
            edge_factor: 16,
            weighted: true,
            requests: 240,
            clients: 6,
            source_pool: 8,
            landmarks: 4,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            seed: 42,
            check: false,
        }
    }
}

/// What one mode (naive or served) did with the stream.
#[derive(Clone, Debug, PartialEq)]
pub struct ModeReport {
    /// `"naive"` or `"served"`.
    pub mode: String,
    /// Requests submitted to the service.
    pub requests: u64,
    /// Requests answered.
    pub answered: u64,
    /// Requests rejected by admission.
    pub rejected: u64,
    /// Requests whose budget tripped mid-traversal.
    pub dnf: u64,
    /// Requests that failed internally.
    pub failed: u64,
    /// Wall-clock seconds for the whole stream.
    pub wall_s: f64,
    /// Answered requests per second.
    pub qps: f64,
    /// Median latency in milliseconds (DNF-censored).
    pub p50_ms: Option<f64>,
    /// 99th-percentile latency in milliseconds (DNF-censored).
    pub p99_ms: Option<f64>,
    /// 99.9th-percentile latency in milliseconds (DNF-censored).
    pub p999_ms: Option<f64>,
    /// Answers that ran a fresh traversal.
    pub exact: u64,
    /// Answers resolved by attaching to an in-flight traversal.
    pub batched: u64,
    /// Answers served from the source cache.
    pub cached: u64,
    /// Answers pinned exactly by the landmark index.
    pub landmark: u64,
    /// Oracle mismatches (`Some` only when `check` ran; must be 0).
    pub wrong_answers: Option<u64>,
}

/// The full two-mode report.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeBenchReport {
    /// Hardware threads of the measuring host.
    pub host_threads: usize,
    /// The configuration that produced the report.
    pub config: ServeBenchConfig,
    /// The recompute-everything reference mode.
    pub naive: ModeReport,
    /// The full pipeline (batching + cache + landmarks).
    pub served: ModeReport,
    /// `served.qps / naive.qps` on the identical stream.
    pub qps_speedup: f64,
}

// ---- deterministic stream generation --------------------------------

/// xorshift64*: tiny, deterministic, good enough to shuffle a workload.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Skewed index into the hot pool: squaring the uniform draw piles the
/// mass onto the lowest (highest-degree) ranks, Zipf-fashion.
fn skewed_index(state: &mut u64, pool: usize) -> usize {
    let u = (next_rand(state) >> 11) as f64 / (1u64 << 53) as f64;
    ((u * u * pool as f64) as usize).min(pool - 1)
}

/// The top-degree vertices, the serving workload's hub sources.
fn hot_sources(g: &Csr, pool: usize) -> Vec<u32> {
    let mut by_degree: Vec<u32> = (0..g.num_vertices() as u32).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
    by_degree.truncate(pool.max(1));
    by_degree
}

fn build_stream(cfg: &ServeBenchConfig, g: &Csr) -> Vec<PointQuery> {
    let sources = hot_sources(g, cfg.source_pool);
    let n = g.num_vertices() as u64;
    let mut state = cfg.seed | 1;
    (0..cfg.requests)
        .map(|i| {
            let source = sources[skewed_index(&mut state, sources.len())];
            let target = (next_rand(&mut state) % n) as u32;
            if cfg.weighted && i % 2 == 1 {
                PointQuery::SsspDist { source, target }
            } else {
                PointQuery::BfsDist { source, target }
            }
        })
        .collect()
}

// ---- oracle table for --check ---------------------------------------

/// Precomputed sequential answers for every source the stream can draw.
struct OracleTable {
    bfs: HashMap<u32, Vec<f64>>,
    sssp: HashMap<u32, Vec<f64>>,
}

impl OracleTable {
    fn build(g: &Csr, stream: &[PointQuery]) -> OracleTable {
        let mut t = OracleTable { bfs: HashMap::new(), sssp: HashMap::new() };
        for q in stream {
            match *q {
                PointQuery::BfsDist { source, .. } => {
                    t.bfs.entry(source).or_insert_with(|| {
                        oracle::bfs(g, source)
                            .level
                            .iter()
                            .map(|&l| if l == u32::MAX { f64::INFINITY } else { f64::from(l) })
                            .collect()
                    });
                }
                PointQuery::SsspDist { source, .. } => {
                    t.sssp.entry(source).or_insert_with(|| {
                        oracle::dijkstra(g, source).iter().map(|&d| f64::from(d)).collect()
                    });
                }
                PointQuery::PrRank { .. } => {}
            }
        }
        t
    }

    fn expected(&self, q: &PointQuery) -> f64 {
        match *q {
            PointQuery::BfsDist { source, target } => self.bfs[&source][target as usize],
            PointQuery::SsspDist { source, target } => self.sssp[&source][target as usize],
            PointQuery::PrRank { .. } => f64::NAN,
        }
    }
}

// ---- the bench itself -----------------------------------------------

fn run_mode(
    mode: &str,
    engine: &Arc<dyn QueryEngine>,
    pool: &Arc<ThreadPool>,
    serve_cfg: ServeConfig,
    stream: &[PointQuery],
    clients: usize,
    table: Option<&OracleTable>,
) -> ModeReport {
    let svc = ServeService::new(Arc::clone(engine), Arc::clone(pool), serve_cfg);
    let wrong = AtomicU64::new(0);
    let start = Instant::now();
    // Closed-loop clients: client k owns the strided slice k, k+C,
    // k+2C, ... and issues its next request the moment the previous one
    // resolves. The partitioning is deterministic, so both modes replay
    // the same per-client sequences.
    let per_client: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|k| {
                let svc = &svc;
                let wrong = &wrong;
                s.spawn(move || {
                    let mut latencies_ms = Vec::new();
                    let mut i = k;
                    while i < stream.len() {
                        let q = &stream[i];
                        let t0 = Instant::now();
                        if let Ok(a) = svc.answer(q) {
                            latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            if let Some(t) = table {
                                if a.value.to_bits() != t.expected(q).to_bits() {
                                    wrong.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        i += clients.max(1);
                    }
                    latencies_ms
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    let stats = svc.stats();
    let latencies: Vec<f64> = per_client.concat();
    let censored = (stats.rejected + stats.dnf + stats.failed) as usize;
    let pct = Percentiles::of(&latencies, censored);
    ModeReport {
        mode: mode.to_string(),
        requests: stats.submitted,
        answered: stats.answered,
        rejected: stats.rejected,
        dnf: stats.dnf,
        failed: stats.failed,
        wall_s,
        qps: if wall_s > 0.0 { stats.answered as f64 / wall_s } else { 0.0 },
        p50_ms: pct.p50,
        p99_ms: pct.p99,
        p999_ms: pct.p999,
        exact: stats.exact,
        batched: stats.batched,
        cached: stats.cached,
        landmark: stats.landmark,
        wrong_answers: table.map(|_| wrong.load(Ordering::Relaxed)),
    }
}

/// Runs the whole bench: build the graph once, replay the stream in
/// naive mode and in served mode, report both plus the ratio.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> ServeBenchReport {
    let el = kronecker::generate(
        &KroneckerConfig {
            scale: cfg.scale,
            edge_factor: cfg.edge_factor,
            weighted: cfg.weighted,
            ..Default::default()
        },
        cfg.seed,
    )
    .symmetrized();
    let g = Csr::from_edge_list(&el);
    let stream = build_stream(cfg, &g);
    let table = cfg.check.then(|| OracleTable::build(&g, &stream));
    let pool = Arc::new(ThreadPool::new(cfg.threads.max(1)));
    let mut eng = GapEngine::new();
    eng.load_edge_list(&el);
    eng.construct(&pool);
    let engine: Arc<dyn QueryEngine> = Arc::new(eng.into_query());
    let served_cfg = ServeConfig { landmarks: cfg.landmarks, ..ServeConfig::default() };
    let naive = run_mode(
        "naive",
        &engine,
        &pool,
        ServeConfig::naive(),
        &stream,
        cfg.clients,
        table.as_ref(),
    );
    let served =
        run_mode("served", &engine, &pool, served_cfg, &stream, cfg.clients, table.as_ref());
    let qps_speedup = if naive.qps > 0.0 { served.qps / naive.qps } else { 0.0 };
    ServeBenchReport {
        host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        config: cfg.clone(),
        naive,
        served,
        qps_speedup,
    }
}

// ---- JSON out + validation ------------------------------------------

fn opt_num(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x}"),
        None => "null".to_string(),
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(x) => format!("{x}"),
        None => "null".to_string(),
    }
}

impl ModeReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"mode\": \"{}\", \"requests\": {}, \"answered\": {}, \"rejected\": {}, \
             \"dnf\": {}, \"failed\": {}, \"wall_s\": {}, \"qps\": {}, \
             \"p50_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \
             \"exact\": {}, \"batched\": {}, \"cached\": {}, \"landmark\": {}, \
             \"wrong_answers\": {}}}",
            self.mode,
            self.requests,
            self.answered,
            self.rejected,
            self.dnf,
            self.failed,
            self.wall_s,
            self.qps,
            opt_num(self.p50_ms),
            opt_num(self.p99_ms),
            opt_num(self.p999_ms),
            self.exact,
            self.batched,
            self.cached,
            self.landmark,
            opt_u64(self.wrong_answers),
        )
    }
}

impl ServeBenchReport {
    /// Renders the report. The top-level `"serve"` object is the part
    /// [`crate::benchgate`] gates on; a committed `BENCH_serve.json` is
    /// a valid `--baseline` for later runs.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \
             \"host\": {{\"hardware_threads\": {}}},\n  \
             \"config\": {{\"scale\": {}, \"edge_factor\": {}, \"weighted\": {}, \
             \"requests\": {}, \"clients\": {}, \"source_pool\": {}, \"landmarks\": {}, \
             \"threads\": {}, \"seed\": {}}},\n  \
             \"modes\": [\n    {},\n    {}\n  ],\n  \
             \"serve\": {{\"naive_qps\": {}, \"served_qps\": {}, \"qps_speedup\": {}}}\n}}\n",
            self.host_threads,
            c.scale,
            c.edge_factor,
            c.weighted,
            c.requests,
            c.clients,
            c.source_pool,
            c.landmarks,
            c.threads,
            c.seed,
            self.naive.to_json(),
            self.served.to_json(),
            self.naive.qps,
            self.served.qps,
            self.qps_speedup,
        )
    }
}

/// Structural validation of a rendered report: schema tag, host record,
/// both modes with their counters, and a `"serve"` summary whose ratio
/// is consistent with the per-mode QPS numbers.
pub fn validate_report_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    if doc.get("schema").and_then(Json::str) != Some(SCHEMA) {
        return Err(format!("\"schema\" must be \"{SCHEMA}\""));
    }
    doc.get("host")
        .and_then(|h| h.get("hardware_threads"))
        .and_then(Json::num)
        .ok_or("missing \"host.hardware_threads\"")?;
    let modes = doc.get("modes").and_then(Json::arr).ok_or("\"modes\" must be an array")?;
    if modes.len() != 2 {
        return Err(format!("expected 2 modes, found {}", modes.len()));
    }
    let mut qps_by_mode = HashMap::new();
    for (want, m) in ["naive", "served"].iter().zip(modes) {
        let mode = m.get("mode").and_then(Json::str).ok_or("mode entry missing \"mode\"")?;
        if mode != *want {
            return Err(format!("modes must be [naive, served]; found \"{mode}\""));
        }
        for key in [
            "requests", "answered", "rejected", "dnf", "failed", "wall_s", "qps", "exact",
            "batched", "cached", "landmark",
        ] {
            m.get(key)
                .and_then(Json::num)
                .ok_or_else(|| format!("mode \"{mode}\": missing \"{key}\""))?;
        }
        let buckets: f64 = ["answered", "rejected", "dnf", "failed"]
            .iter()
            .map(|k| m.get(k).and_then(Json::num).unwrap_or(0.0))
            .sum();
        let submitted = m.get("requests").and_then(Json::num).unwrap_or(0.0);
        if (buckets - submitted).abs() > 0.5 {
            return Err(format!(
                "mode \"{mode}\": outcome buckets sum to {buckets}, not \"requests\" {submitted}"
            ));
        }
        if let Some(w) = m.get("wrong_answers").and_then(Json::num) {
            if w != 0.0 {
                return Err(format!("mode \"{mode}\": {w} wrong answers vs the oracle"));
            }
        }
        qps_by_mode.insert(mode.to_string(), m.get("qps").and_then(Json::num).unwrap_or(0.0));
    }
    let serve = doc.get("serve").ok_or("missing \"serve\" summary")?;
    let speedup =
        serve.get("qps_speedup").and_then(Json::num).ok_or("\"serve\" missing \"qps_speedup\"")?;
    let naive_qps = qps_by_mode["naive"];
    if naive_qps > 0.0 {
        let expect = qps_by_mode["served"] / naive_qps;
        if (speedup - expect).abs() > 1e-6 * expect.max(1.0) {
            return Err(format!(
                "\"qps_speedup\" {speedup} inconsistent with per-mode qps (expected {expect})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_report() -> ServeBenchReport {
        let mode = |name: &str, qps: f64, exact: u64, cached: u64| ModeReport {
            mode: name.to_string(),
            requests: 8,
            answered: 8,
            rejected: 0,
            dnf: 0,
            failed: 0,
            wall_s: 2.0,
            qps,
            p50_ms: Some(1.5),
            p99_ms: Some(3.0),
            p999_ms: None,
            exact,
            batched: 0,
            cached,
            landmark: 0,
            wrong_answers: Some(0),
        };
        ServeBenchReport {
            host_threads: 1,
            config: ServeBenchConfig {
                scale: 8,
                edge_factor: 8,
                weighted: true,
                requests: 8,
                clients: 2,
                source_pool: 2,
                landmarks: 0,
                threads: 1,
                seed: 42,
                check: true,
            },
            naive: mode("naive", 4.0, 8, 0),
            served: mode("served", 16.0, 2, 6),
            qps_speedup: 4.0,
        }
    }

    /// The golden schema: a byte-for-byte rendering of a fixed report.
    /// Any field rename or reorder fails here before it breaks a
    /// committed `BENCH_serve.json` baseline.
    #[test]
    fn golden_report_rendering_is_stable() {
        let golden = r#"{
  "schema": "epg-serve-bench/v1",
  "host": {"hardware_threads": 1},
  "config": {"scale": 8, "edge_factor": 8, "weighted": true, "requests": 8, "clients": 2, "source_pool": 2, "landmarks": 0, "threads": 1, "seed": 42},
  "modes": [
    {"mode": "naive", "requests": 8, "answered": 8, "rejected": 0, "dnf": 0, "failed": 0, "wall_s": 2, "qps": 4, "p50_ms": 1.5, "p99_ms": 3, "p999_ms": null, "exact": 8, "batched": 0, "cached": 0, "landmark": 0, "wrong_answers": 0},
    {"mode": "served", "requests": 8, "answered": 8, "rejected": 0, "dnf": 0, "failed": 0, "wall_s": 2, "qps": 16, "p50_ms": 1.5, "p99_ms": 3, "p999_ms": null, "exact": 2, "batched": 0, "cached": 6, "landmark": 0, "wrong_answers": 0}
  ],
  "serve": {"naive_qps": 4, "served_qps": 16, "qps_speedup": 4}
}
"#;
        let json = fixed_report().to_json();
        assert_eq!(json, golden, "schema drifted — bump SCHEMA if intentional");
        validate_report_json(&json).expect("fixed report validates");
    }

    #[test]
    fn validation_rejects_broken_reports() {
        let good = fixed_report().to_json();
        assert!(validate_report_json(&good).is_ok());
        let bad_schema = good.replace(SCHEMA, "epg-serve-bench/v0");
        assert!(validate_report_json(&bad_schema).unwrap_err().contains("schema"));
        let wrong = good.replace("\"wrong_answers\": 0}", "\"wrong_answers\": 3}");
        assert!(validate_report_json(&wrong).unwrap_err().contains("wrong answers"));
        let skewed = good.replace("\"qps_speedup\": 4", "\"qps_speedup\": 9");
        assert!(validate_report_json(&skewed).unwrap_err().contains("inconsistent"));
        let dropped =
            good.replace("\"answered\": 8, \"rejected\": 0", "\"answered\": 5, \"rejected\": 0");
        assert!(validate_report_json(&dropped).unwrap_err().contains("buckets"));
    }

    #[test]
    fn gate_accepts_a_serve_report_as_candidate_and_baseline() {
        use crate::benchgate::{gate, GateOutcome, ParsedReport, DEFAULT_TOLERANCE};
        let json = fixed_report().to_json();
        let r = ParsedReport::from_json(&json).expect("serve schema parses");
        assert!((r.serve.as_ref().unwrap().qps_speedup - 4.0).abs() < 1e-12);
        let out = gate(&r, &r, DEFAULT_TOLERANCE);
        let GateOutcome::Passed { checks, .. } = out else { panic!("self-gate passes: {out:?}") };
        assert_eq!(checks, 1);
    }

    #[test]
    fn the_stream_is_deterministic_and_skewed() {
        let cfg = ServeBenchConfig { requests: 200, ..ServeBenchConfig::quick() };
        let el = kronecker::generate(
            &KroneckerConfig {
                scale: cfg.scale,
                edge_factor: cfg.edge_factor,
                weighted: true,
                ..Default::default()
            },
            cfg.seed,
        )
        .symmetrized();
        let g = Csr::from_edge_list(&el);
        let a = build_stream(&cfg, &g);
        let b = build_stream(&cfg, &g);
        assert_eq!(a, b, "same seed, same stream");
        // Skew: the hottest source must dominate a uniform share.
        let sources = hot_sources(&g, cfg.source_pool);
        let hottest = a
            .iter()
            .filter(|q| match **q {
                PointQuery::BfsDist { source, .. } | PointQuery::SsspDist { source, .. } => {
                    source == sources[0]
                }
                PointQuery::PrRank { .. } => false,
            })
            .count();
        assert!(
            hottest * cfg.source_pool > a.len(),
            "hottest source got {hottest}/{} requests across a pool of {}",
            a.len(),
            cfg.source_pool
        );
    }

    /// A real end-to-end run at toy scale: zero wrong answers in both
    /// modes and a self-consistent report.
    #[test]
    fn tiny_bench_run_is_oracle_clean() {
        let cfg = ServeBenchConfig {
            scale: 6,
            edge_factor: 4,
            requests: 32,
            clients: 2,
            source_pool: 3,
            landmarks: 1,
            check: true,
            ..ServeBenchConfig::quick()
        };
        let report = run_serve_bench(&cfg);
        assert_eq!(report.naive.wrong_answers, Some(0));
        assert_eq!(report.served.wrong_answers, Some(0));
        assert_eq!(report.naive.answered, 32);
        assert_eq!(report.served.answered, 32);
        assert_eq!(report.naive.exact, 32, "naive mode never amortizes");
        assert!(
            report.served.cached + report.served.batched + report.served.landmark > 0,
            "the served mode amortized something: {:?}",
            report.served
        );
        validate_report_json(&report.to_json()).expect("generated report validates");
    }
}
