//! Phase 5 statistics: the numbers behind the paper's plots.
//!
//! The paper renders most results as R box plots ("an implied 32 data
//! points per box", §III-B); this module computes the same five-number
//! summaries (R's default type-7 quantiles), plus the mean/σ used for the
//! relative-standard-deviation comparison in §IV-A and the speedup and
//! parallel-efficiency definitions of §IV-B.

/// Five-number summary plus moments for one sample set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile (R type-7).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (R type-7).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1).
    pub stddev: f64,
}

impl Summary {
    /// Computes a summary. Panics on an empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "empty sample");
        let mut s = samples.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        let n = s.len();
        let mean = s.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            min: s[0],
            q1: quantile_type7(&s, 0.25),
            median: quantile_type7(&s, 0.5),
            q3: quantile_type7(&s, 0.75),
            max: s[n - 1],
            mean,
            stddev: var.sqrt(),
        }
    }

    /// Relative standard deviation (σ / mean), the statistic §IV-A uses to
    /// compare PageRank and SSSP variance.
    pub fn relative_stddev(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Summary over a right-censored sample: DNF trials (timeout, panic,
/// quarantine) carry no finite time but still count toward the sample,
/// entering the order statistics as +∞. A quantile whose interpolation
/// touches the censored tail is unknowable and reported as `None` — the
/// report renders it as an explicit "DNF" cell rather than silently
/// averaging over only the survivors (which would flatter a flaky engine).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CensoredSummary {
    /// Total trials, completed + DNF.
    pub n: usize,
    /// Trials that finished with a usable time.
    pub completed: usize,
    /// Trials that did not finish.
    pub dnf: usize,
    /// Type-7 median over the censored order statistics; `None` when the
    /// median index lands in the DNF tail.
    pub median: Option<f64>,
    /// Fastest completed trial; `None` when nothing completed.
    pub min: Option<f64>,
}

impl CensoredSummary {
    /// Builds the summary from completed times plus a DNF count.
    pub fn of(completed: &[f64], dnf: usize) -> CensoredSummary {
        let mut s = completed.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        let n = s.len() + dnf;
        let median = censored_quantile_type7(&s, n, 0.5);
        CensoredSummary { n, completed: s.len(), dnf, median, min: s.first().copied() }
    }

    /// Fraction of trials that did not finish.
    pub fn dnf_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.dnf as f64 / self.n as f64
        }
    }
}

/// Tail latency percentiles over a right-censored sample — the serving
/// layer's SLO numbers (`epg serve-bench`), under the same DNF
/// discipline as [`CensoredSummary`]: a rejected or deadline-tripped
/// request has no finite latency but still counts, entering the order
/// statistics as +∞. A percentile whose interpolation touches the
/// censored tail is `None` ("the p999 is a DNF"), never an average over
/// only the survivors — dropping DNFs would report a *better* tail for
/// a service that sheds more load, exactly backwards.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Percentiles {
    /// Total requests, answered + DNF.
    pub n: usize,
    /// Requests with no finite latency (rejected, deadline, failed).
    pub dnf: usize,
    /// Median latency; `None` when censored.
    pub p50: Option<f64>,
    /// 99th percentile; `None` when censored.
    pub p99: Option<f64>,
    /// 99.9th percentile; `None` when censored.
    pub p999: Option<f64>,
}

impl Percentiles {
    /// Builds the percentiles from completed latencies plus a DNF count.
    pub fn of(completed: &[f64], dnf: usize) -> Percentiles {
        let mut s = completed.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        let n = s.len() + dnf;
        Percentiles {
            n,
            dnf,
            p50: censored_quantile_type7(&s, n, 0.5),
            p99: censored_quantile_type7(&s, n, 0.99),
            p999: censored_quantile_type7(&s, n, 0.999),
        }
    }
}

/// Type-7 quantile over the censored order statistics: `sorted` holds
/// the finite observations, `n` the total count (the last `n -
/// sorted.len()` order statistics are +∞). `None` when either
/// interpolation endpoint is censored, or when `n == 0`.
fn censored_quantile_type7(sorted: &[f64], n: usize, p: f64) -> Option<f64> {
    if n == 0 {
        return None;
    }
    let h = (n - 1) as f64 * p;
    let (lo, hi) = (h.floor() as usize, h.ceil() as usize);
    // Both interpolation endpoints must be finite observations.
    (hi < sorted.len()).then(|| sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

/// R's default (type 7) quantile on pre-sorted data.
fn quantile_type7(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n - 1) as f64 * p;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

/// Parallel speedup T1/Tn (§IV-B, Fig. 5).
pub fn speedup(t1: f64, tn: f64) -> f64 {
    t1 / tn
}

/// Parallel efficiency T1/(n·Tn) (§IV-B, Fig. 6).
pub fn efficiency(t1: f64, tn: f64, n: usize) -> f64 {
    t1 / (n as f64 * tn)
}

/// Geometric mean, used when aggregating ratios across datasets.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "empty sample");
    assert!(xs.iter().all(|&x| x > 0.0), "geometric mean needs positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_r_quantiles() {
        // R: quantile(c(1,2,3,4,5,6,7,8,9,10)) -> 25%: 3.25, 50%: 5.5, 75%: 7.75
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert!((s.q1 - 3.25).abs() < 1e-12);
        assert!((s.median - 5.5).abs() < 1e-12);
        assert!((s.q3 - 7.75).abs() < 1e-12);
        assert!((s.mean - 5.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_one_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let a = Summary::of(&[3.0, 1.0, 2.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn relative_stddev() {
        let s = Summary::of(&[9.0, 10.0, 11.0]);
        assert!((s.relative_stddev() - 1.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_efficiency_definitions() {
        assert_eq!(speedup(10.0, 2.0), 5.0);
        assert_eq!(efficiency(10.0, 2.0, 8), 0.625);
        // Ideal: Tn = T1/n -> efficiency 1.
        assert!((efficiency(8.0, 1.0, 8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn censored_median_matches_uncensored_when_all_complete() {
        let times = [1.0, 2.0, 3.0, 4.0, 5.0];
        let c = CensoredSummary::of(&times, 0);
        assert_eq!(c.median, Some(Summary::of(&times).median));
        assert_eq!(c.dnf_rate(), 0.0);
        assert_eq!(c.min, Some(1.0));
    }

    #[test]
    fn minority_dnf_shifts_but_keeps_the_median() {
        // 4 completed + 1 DNF: h = 2.0 lands on the 3rd order statistic.
        let c = CensoredSummary::of(&[1.0, 2.0, 3.0, 4.0], 1);
        assert_eq!(c.n, 5);
        assert_eq!(c.median, Some(3.0));
        // 3 completed + 2 DNF: h = 2.0 still lands on a finite value.
        let c = CensoredSummary::of(&[1.0, 2.0, 3.0], 2);
        assert_eq!(c.median, Some(3.0));
    }

    #[test]
    fn majority_dnf_censors_the_median() {
        // 2 completed + 3 DNF: median index is in the infinite tail.
        let c = CensoredSummary::of(&[1.0, 2.0], 3);
        assert_eq!(c.median, None);
        assert!((c.dnf_rate() - 0.6).abs() < 1e-12);
        assert_eq!(c.min, Some(1.0));
    }

    #[test]
    fn interpolation_touching_the_tail_is_censored() {
        // 2 completed + 2 DNF: h = 1.5 interpolates s[1]..s[2]; s[2] is ∞.
        let c = CensoredSummary::of(&[1.0, 2.0], 2);
        assert_eq!(c.median, None);
    }

    #[test]
    fn percentiles_match_type7_when_nothing_is_censored() {
        let latencies: Vec<f64> = (1..=1000).map(f64::from).collect();
        let p = Percentiles::of(&latencies, 0);
        assert_eq!((p.n, p.dnf), (1000, 0));
        // R: quantile(1:1000, c(.5, .99, .999)) -> 500.5, 990.01, 999.001
        assert!((p.p50.unwrap() - 500.5).abs() < 1e-9);
        assert!((p.p99.unwrap() - 990.01).abs() < 1e-9);
        assert!((p.p999.unwrap() - 999.001).abs() < 1e-9);
    }

    #[test]
    fn a_thin_dnf_tail_censors_only_the_high_percentiles() {
        // 995 completed + 5 DNF: the p50 and p99 interpolate inside the
        // finite observations, the p999 touches the infinite tail.
        let latencies: Vec<f64> = (1..=995).map(f64::from).collect();
        let p = Percentiles::of(&latencies, 5);
        assert_eq!(p.n, 1000);
        assert!(p.p50.is_some());
        assert!(p.p99.is_some());
        assert_eq!(p.p999, None, "p999 is a DNF, not a survivor average");
    }

    #[test]
    fn heavy_dnf_censors_everything_down_to_the_median() {
        let p = Percentiles::of(&[1.0, 2.0], 8);
        assert_eq!((p.p50, p.p99, p.p999), (None, None, None));
        assert_eq!(p.dnf, 8);
        // And the empty sample is all-None rather than a panic.
        assert_eq!(Percentiles::of(&[], 0), Percentiles::default());
    }

    #[test]
    fn percentiles_and_censored_summary_agree_on_the_median() {
        let times = [4.0, 1.0, 3.0, 2.0];
        for dnf in 0..4 {
            assert_eq!(
                Percentiles::of(&times, dnf).p50,
                CensoredSummary::of(&times, dnf).median,
                "dnf={dnf}"
            );
        }
    }

    #[test]
    fn all_dnf_and_empty_samples() {
        let c = CensoredSummary::of(&[], 4);
        assert_eq!((c.n, c.median, c.min), (4, None, None));
        assert_eq!(c.dnf_rate(), 1.0);
        let c = CensoredSummary::of(&[], 0);
        assert_eq!((c.n, c.median), (0, None));
        assert_eq!(c.dnf_rate(), 0.0);
    }
}
