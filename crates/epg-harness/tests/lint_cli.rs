//! `epg lint` facade: the exit-code contract, end to end.
//!
//! The facade must pass `run_lint`'s code through verbatim — `0` clean,
//! `1` findings, `2` configuration errors (unknown rule ids included),
//! `3` stale allowlist entries under `--strict` — so CI and scripts can
//! branch on *why* the lint failed without parsing output. Spawns the
//! real `epg` binary via `CARGO_BIN_EXE_epg`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn epg(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_epg")).args(args).output().expect("spawn epg")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("exit code, not a signal")
}

/// The epg-lint mini fixture workspace, which seeds one violation per
/// architectural rule.
fn mini_fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../epg-lint/tests/fixtures/mini")
}

fn temp_root(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp lint root");
    dir
}

#[test]
fn findings_exit_1_with_report_on_stdout() {
    let root = mini_fixture();
    let out = epg(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "layering",
        "shared-mutable-capture",
        "cancellation-coverage",
        "lock-order-cycle",
        "blocking-while-locked",
        "condvar-wait-loop",
        "guard-across-span",
    ] {
        assert!(stdout.contains(rule), "missing [{rule}] in:\n{stdout}");
    }
}

#[test]
fn clean_tree_exits_0() {
    let root = temp_root("lint-clean");
    let out = epg(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
}

#[test]
fn stale_allowlist_is_exit_3_only_under_strict() {
    let root = temp_root("lint-stale");
    std::fs::write(
        root.join("epg-lint.toml"),
        "[[allow]]\nfile = \"src/nothing.rs\"\nrule = \"static-mut\"\nreason = \"test: never matches\"\n",
    )
    .expect("write allowlist");
    let strict = epg(&["lint", "--strict", "--root", root.to_str().unwrap()]);
    assert_eq!(exit_code(&strict), 3, "stale-only strict runs get the distinct code");
    assert!(String::from_utf8_lossy(&strict.stdout).contains("stale"));
    let lax = epg(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(exit_code(&lax), 0, "without --strict, stale entries only warn");
}

#[test]
fn malformed_allowlist_is_exit_2() {
    let root = temp_root("lint-broken");
    std::fs::write(root.join("epg-lint.toml"), "[[allow]]\nrule = \"static-mut\"\n")
        .expect("write allowlist");
    let out = epg(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2, "a broken allowlist must fail, not silently pass");
}

#[test]
fn explain_prints_the_catalog_entry() {
    let out = epg(&["lint", "--explain", "shared-mutable-capture"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for section in ["WHY", "EXAMPLE VIOLATION", "FIX", "DisjointWriter"] {
        assert!(stdout.contains(section), "missing {section} in:\n{stdout}");
    }
}

#[test]
fn explain_covers_the_locking_family() {
    let out = epg(&["lint", "--explain", "lock-order-cycle"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for section in ["WHY", "EXAMPLE VIOLATION", "FIX", "acquisition order"] {
        assert!(stdout.contains(section), "missing {section} in:\n{stdout}");
    }
}

#[test]
fn explain_rejects_unknown_rules_with_the_id_list() {
    let out = epg(&["lint", "--explain", "no-such-rule"]);
    assert_eq!(exit_code(&out), 2);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("hot-loop-alloc"), "id list helps discovery:\n{stderr}");
}
