//! Golden-file test for `epg trace summarize`.
//!
//! The fixture is a hand-written but schema-faithful trace of a
//! three-iteration GAP BFS run (phases, regions, per-iteration counter
//! deltas, worker spans, allocation high-water marks, and one line of
//! non-trace chatter). The rendered summary is compared byte-for-byte
//! against the checked-in golden file, so any change to the summarizer's
//! layout is a visible diff in review rather than a silent drift.
//!
//! To regenerate after an intentional format change:
//! `EPG_BLESS_GOLDEN=1 cargo test -p epg-harness --test golden_summarize`

use std::path::Path;

#[test]
fn summarize_matches_golden() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let input = std::fs::read_to_string(dir.join("gap_bfs_kron8.trace.jsonl")).unwrap();
    let got = epg_harness::tracefile::summarize(&input);

    let golden_path = dir.join("gap_bfs_kron8.summary.golden");
    if std::env::var_os("EPG_BLESS_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(
        got, want,
        "summary drifted from golden; if intentional, re-bless with EPG_BLESS_GOLDEN=1"
    );
}

#[test]
fn dnf_summary_matches_golden() {
    // A supervised PageRank trial that blew its budget: the trace ends in
    // a cooperative-cancellation PhaseEnd plus a "timeout" TrialOutcome,
    // and the summary must render the trial-outcomes section.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let input = std::fs::read_to_string(dir.join("gap_pr_dnf.trace.jsonl")).unwrap();
    let got = epg_harness::tracefile::summarize(&input);
    assert!(got.contains("trial outcomes"), "summary must surface the DNF:\n{got}");

    let golden_path = dir.join("gap_pr_dnf.summary.golden");
    if std::env::var_os("EPG_BLESS_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(
        got, want,
        "DNF summary drifted from golden; if intentional, re-bless with EPG_BLESS_GOLDEN=1"
    );
}

#[test]
fn golden_fixture_parses_cleanly_except_the_chatter_line() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let input = std::fs::read_to_string(dir.join("gap_bfs_kron8.trace.jsonl")).unwrap();
    let parsed = epg_trace::jsonl::parse_jsonl(&input);
    assert_eq!(parsed.skipped, 1, "fixture has exactly one deliberate chatter line");
    assert_eq!(parsed.events.len(), 24);
}
