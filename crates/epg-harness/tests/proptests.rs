//! Property tests for the harness's parsing layers: the CSV reader/writer
//! and the log-dialect parsers must survive arbitrary content (the phase-4
//! AWK step of the original framework is notoriously fragile; ours must
//! not be).

use epg_engine_api::logfmt::LogStyle;
use epg_engine_api::Phase;
use epg_harness::{csvio, logs, stats::Summary};
use proptest::prelude::*;

const STYLES: [LogStyle; 6] = [
    LogStyle::Gap,
    LogStyle::Graph500,
    LogStyle::GraphBig,
    LogStyle::GraphMat,
    LogStyle::PowerGraph,
    LogStyle::Generic,
];

proptest! {
    #[test]
    fn csv_roundtrips_arbitrary_fields(
        fields in proptest::collection::vec("[ -~]{0,24}", 1..8)
    ) {
        let refs: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
        let mut buf = Vec::new();
        csvio::write_row(&mut buf, &refs).unwrap();
        let rows = csvio::read_all(buf.as_slice()).unwrap();
        prop_assert_eq!(rows.len(), 1);
        prop_assert_eq!(&rows[0], &fields);
    }

    #[test]
    fn log_parsers_never_panic_on_junk(
        junk in proptest::collection::vec("[ -~]{0,60}", 0..20),
        style_idx in 0usize..6,
    ) {
        let style = STYLES[style_idx];
        let text = junk.join("\n");
        // Must not panic; any parses must carry finite values.
        for e in logs::parse_log(style, &text) {
            prop_assert!(e.seconds.is_finite());
        }
    }

    #[test]
    fn log_roundtrip_survives_surrounding_junk(
        secs in 1e-6f64..1e4,
        prefix in "[a-zA-Z ]{0,30}",
        style_idx in 0usize..6,
    ) {
        let style = STYLES[style_idx];
        let Some(line) = style.format_phase(Phase::Run, secs, "CTX") else { return Ok(()); };
        let text = format!("{prefix}\n{line}\nmore trailing noise\n");
        let parsed = logs::parse_log(style, &text);
        let run = parsed.iter().find(|e| e.phase == Phase::Run);
        prop_assert!(run.is_some(), "{style:?} lost its own line");
        let got = run.unwrap().seconds;
        prop_assert!((got - secs).abs() / secs < 1e-3, "{style:?}: {got} vs {secs}");
    }

    #[test]
    fn summary_orders_hold(samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let s = Summary::of(&samples);
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.stddev >= 0.0);
    }

    #[test]
    fn quantiles_are_translation_equivariant(
        samples in proptest::collection::vec(0.0f64..1e3, 2..100),
        shift in -100.0f64..100.0,
    ) {
        let a = Summary::of(&samples);
        let shifted: Vec<f64> = samples.iter().map(|x| x + shift).collect();
        let b = Summary::of(&shifted);
        prop_assert!((b.median - (a.median + shift)).abs() < 1e-6);
        prop_assert!((b.q1 - (a.q1 + shift)).abs() < 1e-6);
        prop_assert!((b.stddev - a.stddev).abs() < 1e-6);
    }
}
