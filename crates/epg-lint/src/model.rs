//! The workspace model: crate DAG plus a lightweight per-file item model.
//!
//! This is the substrate the architectural rule families run on. It is
//! deliberately token-level — no `syn`, no full parse — built on the same
//! comment/string-aware scanner as the line rules:
//!
//! * **Crate DAG** — every workspace member's `Cargo.toml` parsed into its
//!   package name and `[dependencies]`/`[dev-dependencies]` lists, with the
//!   manifest line of each declaration (findings point at the declaration).
//! * **Per-file item model** — for every `src/**/*.rs` (and `tests/`,
//!   `benches/`, `examples/`, which are marked as test-role): `fn` spans
//!   (signature through closing brace, or through `;` for trait method
//!   declarations), `#[cfg(test)]`/`#[test]` spans, iteration-loop body
//!   spans (`loop`/`while`/`for … in`), spans of arguments passed to the
//!   `epg-parallel` entry points (worker closures), and every
//!   `epg_*::`-rooted path occurrence.
//!
//! Spans are 1-based inclusive line ranges. Because the scanner blanks
//! string and char-literal contents, brace/paren matching over the code
//! text cannot be derailed by delimiters inside literals.

use crate::scan::{find_word_from, scan, Line};
use std::path::Path;

/// The whole workspace: one entry per discovered member crate.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Member crates, in discovery order (manifest `members` order).
    pub crates: Vec<CrateModel>,
}

/// One crate: manifest facts plus a model of every `.rs` file under it.
#[derive(Debug)]
pub struct CrateModel {
    /// Package name from `[package]` (e.g. `epg-engine-gap`).
    pub name: String,
    /// Workspace-relative crate directory, `/`-separated, no trailing `/`.
    pub dir: String,
    /// Workspace-relative path of the crate's `Cargo.toml`.
    pub manifest_path: String,
    /// Raw manifest lines (for allowlist `contains` matching).
    pub manifest_lines: Vec<String>,
    /// `[dependencies]` entries.
    pub deps: Vec<Dep>,
    /// `[dev-dependencies]` entries.
    pub dev_deps: Vec<Dep>,
    /// Every `.rs` file under the crate directory.
    pub files: Vec<FileModel>,
}

/// One declared dependency and the manifest line declaring it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dep {
    /// Package name as declared (dashed).
    pub name: String,
    /// 1-based line in the crate's `Cargo.toml`.
    pub line: usize,
}

/// A named span of source lines (1-based, inclusive).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// First line (the one holding `fn`).
    pub start: usize,
    /// Last line (closing brace, or the `;` of a bodiless declaration).
    pub end: usize,
}

/// One `epg_*::` path-root occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathRef {
    /// Referenced crate, dashed (e.g. `epg-graph` for `epg_graph::…`).
    pub krate: String,
    /// 1-based line of the occurrence.
    pub line: usize,
}

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// Bare `name(…)` or module-path `mod::name(…)`.
    Free,
    /// `.name(…)` on some receiver expression.
    Method,
    /// `Type::name(…)` with an explicit capitalized qualifier (`Self`
    /// included, resolved against the enclosing impl by the call graph).
    Qualified(String),
}

/// One call site: `name(`, `.name(`, or `Type::name(` in code text.
/// Macro invocations (`name!(…)`) and `fn` definitions are excluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// Syntactic shape of the call.
    pub kind: CallKind,
    /// 1-based line of the call.
    pub line: usize,
}

/// One named struct field and the head identifier of its type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldModel {
    /// Field name.
    pub name: String,
    /// First type identifier after stripping `Arc`/`Box`/`Rc`/`Cell`/
    /// `RefCell` wrappers — so `Arc<Mutex<T>>` reads as `Mutex`.
    pub ty_head: String,
    /// 1-based line of the field declaration.
    pub line: usize,
}

/// One `struct` item with named fields (tuple and unit structs carry no
/// lock state the locking rules can name, so they are modeled fieldless).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructModel {
    /// Struct name.
    pub name: String,
    /// Named fields, in declaration order.
    pub fields: Vec<FieldModel>,
    /// First line (the one holding `struct`).
    pub start: usize,
    /// Last line (closing brace or `;`).
    pub end: usize,
}

/// The item model of one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Scanner output, one entry per source line.
    pub lines: Vec<Line>,
    /// Whether the file lives under `tests/`, `benches/`, or `examples/`
    /// of its crate — test-role code exempt from the runtime-discipline
    /// rules.
    pub test_role: bool,
    /// Every `fn` item span (including nested fns and trait-method
    /// declarations).
    pub fns: Vec<FnSpan>,
    /// Spans covered by `#[cfg(test)]` items or `#[test]` functions.
    pub test_spans: Vec<(usize, usize)>,
    /// Iteration-loop body spans (`loop`, `while`, `for … in`).
    pub loops: Vec<(usize, usize)>,
    /// Spans of complete argument lists passed to `epg-parallel` entry
    /// points (`.parallel_for(…)` etc.) — the worker-closure context.
    pub par_calls: Vec<(usize, usize)>,
    /// Every `epg_*::` path-root occurrence outside comments/strings.
    pub epg_refs: Vec<PathRef>,
    /// Every call site (`name(`, `.name(`, `Type::name(`) in code text.
    pub calls: Vec<CallSite>,
    /// Every `struct` item with its named fields.
    pub structs: Vec<StructModel>,
    /// `impl` block spans; `name` is the self type (`impl T` and
    /// `impl Trait for T` both yield `T`).
    pub impls: Vec<FnSpan>,
    code: Code,
}

impl FileModel {
    /// Builds the model for one scanned file.
    pub fn build(path: String, lines: Vec<Line>, test_role: bool) -> FileModel {
        let code = Code::new(&lines);
        let fns = parse_fns(&code);
        let test_spans = parse_test_spans(&code, &fns);
        let loops = parse_loops(&code);
        let par_calls = parse_par_calls(&code);
        let epg_refs = parse_epg_refs(&code);
        let calls = parse_calls(&code);
        let structs = parse_structs(&code);
        let impls = parse_impls(&code);
        FileModel {
            path,
            lines,
            test_role,
            fns,
            test_spans,
            loops,
            par_calls,
            epg_refs,
            calls,
            structs,
            impls,
            code,
        }
    }

    /// 1-based lines whose code text contains `token` (substring match
    /// with identifier boundaries at whichever ends of the token are
    /// identifier characters). Each line appears once.
    pub fn token_lines(&self, token: &str) -> Vec<usize> {
        let mut out = Vec::new();
        for off in self.code.token_offsets(token) {
            let line = self.code.line_of(off);
            if out.last() != Some(&line) {
                out.push(line);
            }
        }
        out
    }

    /// 1-based lines invoking any `epg-parallel` entry point
    /// ([`PAR_ENTRY_POINTS`]), sorted and deduplicated. The flow pass uses
    /// these to classify loops that directly dispatch parallel work as
    /// timed spans even when the call's own arg span is short.
    pub fn par_entry_lines(&self) -> Vec<usize> {
        let mut out: Vec<usize> =
            PAR_ENTRY_POINTS.iter().flat_map(|tok| self.token_lines(tok)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether `line` falls inside test-only code (`#[cfg(test)]` item or
    /// `#[test]` fn) or the whole file is test-role.
    pub fn in_test(&self, line: usize) -> bool {
        self.test_role || self.test_spans.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// Whether `line` falls inside a `fn` with the given name (signature
    /// included, so trait-method declarations count).
    pub fn in_fn_named(&self, line: usize, name: &str) -> bool {
        self.fns.iter().any(|f| f.name == name && f.start <= line && line <= f.end)
    }

    /// Whether `line` falls inside an iteration-loop body or a
    /// worker-closure argument list.
    pub fn in_loop_or_worker(&self, line: usize) -> bool {
        let hit = |spans: &[(usize, usize)]| spans.iter().any(|&(s, e)| s <= line && line <= e);
        hit(&self.loops) || hit(&self.par_calls)
    }

    /// Last line of the innermost brace block open at the **start** of
    /// `line` (the line holding its closing `}`), or the file's last line
    /// when the position sits at top level. The locking rules use this to
    /// bound a lock guard's lexical scope.
    pub fn block_end(&self, line: usize) -> usize {
        let last = self.lines.len().max(1);
        let Some(&off) = self.code.starts.get(line.saturating_sub(1)) else { return last };
        let bytes = self.code.text.as_bytes();
        let mut stack: Vec<usize> = Vec::new();
        for (i, &b) in bytes.iter().enumerate().take(off) {
            match b {
                b'{' => stack.push(i),
                b'}' => {
                    stack.pop();
                }
                _ => {}
            }
        }
        match stack.last() {
            Some(&open) => self.code.line_of(match_brace(bytes, open)),
            None => last,
        }
    }
}

/// Joined code text with per-line byte offsets, for cross-line matching.
#[derive(Debug)]
struct Code {
    text: String,
    /// Byte offset in `text` where each line starts.
    starts: Vec<usize>,
}

impl Code {
    fn new(lines: &[Line]) -> Code {
        let mut text = String::new();
        let mut starts = Vec::with_capacity(lines.len());
        for line in lines {
            starts.push(text.len());
            text.push_str(&line.code);
            text.push('\n');
        }
        Code { text, starts }
    }

    /// 1-based line holding byte offset `off`.
    fn line_of(&self, off: usize) -> usize {
        match self.starts.binary_search(&off) {
            Ok(i) => i + 1,
            Err(i) => i, // insertion point; the line starting before `off`
        }
    }

    /// Byte offsets of every boundary-respecting occurrence of `token`.
    fn token_offsets(&self, token: &str) -> Vec<usize> {
        let bytes = self.text.as_bytes();
        let first_ident = token.bytes().next().is_some_and(is_ident_byte);
        let last_ident = token.bytes().last().is_some_and(is_ident_byte);
        let mut out = Vec::new();
        let mut from = 0;
        while let Some(pos) = self.text[from..].find(token) {
            let start = from + pos;
            let end = start + token.len();
            // Plain identifier boundary only: a preceding `:` must stay
            // legal so `std::time::Instant::now` matches `Instant::now`
            // and absolute `::std::fs` paths match `std::fs`.
            let before_ok = !first_ident || start == 0 || !is_ident_byte(bytes[start - 1]);
            let after_ok = !last_ident || end == bytes.len() || !is_ident_byte(bytes[end]);
            if before_ok && after_ok {
                out.push(start);
            }
            from = start + 1;
        }
        out
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Path tokens like `std::fs` must not match inside `my::std::fs` — treat
/// a preceding `:` as an identifier continuation too.
fn is_ident_byte_or_colon(b: u8) -> bool {
    is_ident_byte(b) || b == b':'
}

/// Offset of the `}` closing the `{` at `open` (balanced count; literals
/// are already blanked). Falls back to the end of text.
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    bytes.len().saturating_sub(1)
}

/// Offset of the `)` closing the `(` at `open`.
fn match_paren(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    bytes.len().saturating_sub(1)
}

fn parse_fns(code: &Code) -> Vec<FnSpan> {
    let text = &code.text;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_word_from(text, from, "fn") {
        from = pos + 2;
        let mut i = pos + 2;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let ident_start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if i == ident_start {
            continue; // `fn(...)` pointer type — not an item
        }
        let name = text[ident_start..i].to_string();
        // Scan past generics/params/return type for the body `{` or the
        // `;` of a bodiless declaration, at bracket depth 0.
        let mut paren = 0i64;
        let mut brack = 0i64;
        let mut j = i;
        let mut end = None;
        while j < bytes.len() {
            match bytes[j] {
                b'(' => paren += 1,
                b')' => paren -= 1,
                b'[' => brack += 1,
                b']' => brack -= 1,
                b'{' if paren == 0 && brack == 0 => {
                    end = Some(match_brace(bytes, j));
                    break;
                }
                b';' if paren == 0 && brack == 0 => {
                    end = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let end = end.unwrap_or(bytes.len().saturating_sub(1));
        out.push(FnSpan { name, start: code.line_of(pos), end: code.line_of(end) });
    }
    out
}

fn parse_test_spans(code: &Code, fns: &[FnSpan]) -> Vec<(usize, usize)> {
    let text = &code.text;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for attr in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(pos) = text[from..].find(attr) {
            let start = from + pos;
            from = start + attr.len();
            let attr_line = code.line_of(start);
            // Skip whitespace, further attributes, and visibility to find
            // the annotated item.
            let mut i = start + attr.len();
            loop {
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                if i + 1 < bytes.len() && bytes[i] == b'#' && bytes[i + 1] == b'[' {
                    // Another attribute: skip to its closing bracket.
                    let mut depth = 0i64;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'[' => depth += 1,
                            b']' => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                    continue;
                }
                break;
            }
            // Optional `pub` / `pub(crate)`.
            if text[i..].starts_with("pub") {
                i += 3;
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'(' {
                    i = match_paren(bytes, i) + 1;
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                }
            }
            let word_end =
                (i..bytes.len()).find(|&k| !is_ident_byte(bytes[k])).unwrap_or(bytes.len());
            match &text[i..word_end] {
                "mod" => {
                    if let Some(open) = text[word_end..].find('{') {
                        let close = match_brace(bytes, word_end + open);
                        out.push((attr_line, code.line_of(close)));
                    }
                }
                "fn" => {
                    if let Some(f) = fns.iter().find(|f| f.start >= attr_line) {
                        out.push((attr_line, f.end));
                    }
                }
                _ => {
                    // `#[cfg(test)] use …;` and the like: the item's line.
                    out.push((attr_line, code.line_of(i.min(bytes.len() - 1))));
                }
            }
        }
    }
    out.sort_unstable();
    out
}

fn parse_loops(code: &Code) -> Vec<(usize, usize)> {
    let text = &code.text;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for kw in ["loop", "while", "for"] {
        let mut from = 0;
        while let Some(pos) = find_word_from(text, from, kw) {
            from = pos + kw.len();
            let mut i = pos + kw.len();
            // `for<'a>` (higher-ranked bounds) is not a loop.
            if kw == "for" {
                let mut k = i;
                while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                if k < bytes.len() && bytes[k] == b'<' {
                    continue;
                }
            }
            // Find the body `{` at paren/bracket depth 0; a `for` must
            // pass a top-level `in` first (rules out `impl Trait for T`).
            let mut paren = 0i64;
            let mut brack = 0i64;
            let mut saw_in = kw != "for";
            let mut open = None;
            while i < bytes.len() {
                match bytes[i] {
                    b'(' => paren += 1,
                    b')' => paren -= 1,
                    b'[' => brack += 1,
                    b']' => brack -= 1,
                    b'{' if paren == 0 && brack == 0 => {
                        open = Some(i);
                        break;
                    }
                    b';' | b'}' if paren == 0 && brack == 0 => break,
                    b'i' if paren == 0
                        && brack == 0
                        && text[i..].starts_with("in")
                        && !is_ident_byte(*bytes.get(i + 2).unwrap_or(&b' '))
                        && (i == 0 || !is_ident_byte(bytes[i - 1])) =>
                    {
                        saw_in = true;
                    }
                    _ => {}
                }
                i += 1;
            }
            if let (Some(open), true) = (open, saw_in) {
                let close = match_brace(bytes, open);
                out.push((code.line_of(pos), code.line_of(close)));
            }
        }
    }
    out.sort_unstable();
    out
}

/// The `epg-parallel` entry points whose closure arguments are worker
/// code. Token-level: a call to any method with one of these names counts.
pub(crate) const PAR_ENTRY_POINTS: &[&str] = &[
    ".region(",
    ".parallel_for(",
    ".parallel_for_ranges(",
    ".parallel_reduce(",
    ".parallel_sum_f64(",
    ".parallel_any(",
    ".parallel_max_f64(",
];

fn parse_par_calls(code: &Code) -> Vec<(usize, usize)> {
    let text = &code.text;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for tok in PAR_ENTRY_POINTS {
        let mut from = 0;
        while let Some(pos) = text[from..].find(tok) {
            let start = from + pos;
            from = start + tok.len();
            let open = start + tok.len() - 1;
            let close = match_paren(bytes, open);
            out.push((code.line_of(start), code.line_of(close)));
        }
    }
    out.sort_unstable();
    out
}

fn parse_epg_refs(code: &Code) -> Vec<PathRef> {
    let text = &code.text;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find("epg_") {
        let start = from + pos;
        from = start + 4;
        if start > 0 && is_ident_byte_or_colon(bytes[start - 1]) {
            continue;
        }
        let mut end = start + 4;
        while end < bytes.len() && is_ident_byte(bytes[end]) {
            end += 1;
        }
        if !text[end..].starts_with("::") {
            continue; // a local identifier that merely starts with epg_
        }
        out.push(PathRef { krate: text[start..end].replace('_', "-"), line: code.line_of(start) });
    }
    out
}

/// Words that can directly precede `(` without being a call.
const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "unsafe", "let", "pub", "fn", "impl", "use", "mod", "where", "struct", "enum", "trait",
    "type", "dyn", "ref", "mut", "crate", "super", "self", "Self",
];

fn parse_calls(code: &Code) -> Vec<CallSite> {
    let text = &code.text;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for (j, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        let mut s = j;
        while s > 0 && is_ident_byte(bytes[s - 1]) {
            s -= 1;
        }
        if s == j {
            continue; // `(` not preceded by an identifier
        }
        let name = &text[s..j];
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let prev = if s > 0 { bytes[s - 1] } else { b'\n' };
        if prev == b'!' {
            continue; // macro invocation
        }
        // `fn name(` is a definition, not a call.
        let mut k = s;
        while k > 0 && bytes[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if text[..k].ends_with("fn") && (k < 3 || !is_ident_byte(bytes[k - 3])) {
            continue;
        }
        let kind = if prev == b'.' {
            CallKind::Method
        } else if s >= 2 && bytes[s - 1] == b':' && bytes[s - 2] == b':' {
            let mut q = s - 2;
            while q > 0 && is_ident_byte(bytes[q - 1]) {
                q -= 1;
            }
            let qual = &text[q..s - 2];
            // Capitalized qualifier = a type (`Flight::new`); lowercase =
            // a module path (`check::next_id`), resolved like a free call.
            if qual.starts_with(|c: char| c.is_ascii_uppercase()) || qual == "Self" {
                CallKind::Qualified(qual.to_string())
            } else {
                CallKind::Free
            }
        } else {
            CallKind::Free
        };
        out.push(CallSite { name: name.to_string(), kind, line: code.line_of(s) });
    }
    out
}

/// Smart-pointer wrappers stripped when reading a field's type head.
const TYPE_WRAPPERS: &[&str] = &["Arc", "Box", "Rc", "Cell", "RefCell"];

/// First meaningful type identifier of a field type: skips `&`/`dyn`/
/// `mut`, then unwraps `Arc<…>`-style wrappers one level at a time.
fn type_head(mut ty: &str) -> String {
    loop {
        ty = ty.trim_start().trim_start_matches('&').trim_start();
        for kw in ["dyn ", "mut "] {
            if let Some(rest) = ty.strip_prefix(kw) {
                ty = rest;
            }
        }
        ty = ty.trim_start();
        let end = ty.find(|c: char| !c.is_ascii_alphanumeric() && c != '_').unwrap_or(ty.len());
        let head = &ty[..end];
        let rest = ty[end..].trim_start();
        if TYPE_WRAPPERS.contains(&head) && rest.starts_with('<') {
            ty = &rest[1..];
            continue;
        }
        return head.to_string();
    }
}

fn parse_structs(code: &Code) -> Vec<StructModel> {
    let text = &code.text;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_word_from(text, from, "struct") {
        from = pos + 6;
        let mut i = pos + 6;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            continue;
        }
        let name = text[name_start..i].to_string();
        // Walk to the body `{` at angle-bracket depth 0; `(` (tuple) and
        // `;` (unit) end the item without named fields.
        let mut angle = 0i64;
        let mut open = None;
        while i < bytes.len() {
            match bytes[i] {
                b'<' => angle += 1,
                b'>' => angle -= 1,
                b'{' if angle <= 0 => {
                    open = Some(i);
                    break;
                }
                b'(' | b';' if angle <= 0 => break,
                _ => {}
            }
            i += 1;
        }
        let Some(open) = open else {
            out.push(StructModel {
                name,
                fields: Vec::new(),
                start: code.line_of(pos),
                end: code.line_of(i.min(bytes.len().saturating_sub(1))),
            });
            continue;
        };
        let close = match_brace(bytes, open);
        let fields = parse_fields(code, open + 1, close);
        out.push(StructModel { name, fields, start: code.line_of(pos), end: code.line_of(close) });
    }
    out
}

/// Parses `name: Type` declarations between `lo` and `hi` byte offsets
/// (a struct body), splitting on top-level commas.
fn parse_fields(code: &Code, lo: usize, hi: usize) -> Vec<FieldModel> {
    let text = &code.text;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut piece_start = lo;
    let mut i = lo;
    while i <= hi {
        let b = if i < hi { bytes[i] } else { b',' };
        match b {
            b'(' | b'[' | b'{' | b'<' => depth += 1,
            b')' | b']' | b'}' | b'>' => depth -= 1,
            b',' if depth <= 0 => {
                if let Some(f) = parse_field(code, &text[piece_start..i], piece_start) {
                    out.push(f);
                }
                piece_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

fn parse_field(code: &Code, piece: &str, off: usize) -> Option<FieldModel> {
    let mut rest = piece;
    // Skip attributes and visibility.
    loop {
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix("#[") {
            let close = after.find(']')?;
            rest = &after[close + 1..];
            continue;
        }
        if let Some(after) = rest.strip_prefix("pub") {
            if after.starts_with(|c: char| c.is_whitespace() || c == '(') {
                let after = after.trim_start();
                rest = match after.strip_prefix('(') {
                    Some(inner) => &inner[inner.find(')')? + 1..],
                    None => after,
                };
                continue;
            }
        }
        break;
    }
    let name_end = rest.find(|c: char| !c.is_ascii_alphanumeric() && c != '_')?;
    let name = &rest[..name_end];
    let after = rest[name_end..].trim_start();
    let ty = after.strip_prefix(':')?;
    if name.is_empty() || ty.starts_with(':') {
        return None; // empty piece or a `path::to` fragment, not `name: Ty`
    }
    let line_off = off + (piece.len() - piece.trim_start().len());
    Some(FieldModel {
        name: name.to_string(),
        ty_head: type_head(ty),
        line: code.line_of(line_off),
    })
}

fn parse_impls(code: &Code) -> Vec<FnSpan> {
    let text = &code.text;
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_word_from(text, from, "impl") {
        from = pos + 4;
        // `-> impl Trait` / `(impl Trait` are types, not items.
        let mut p = pos;
        while p > 0 && bytes[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        if p > 0 && matches!(bytes[p - 1], b'>' | b'(' | b',' | b'=' | b'+' | b':' | b'&') {
            continue;
        }
        let mut i = pos + 4;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        // Skip the impl's own generics.
        if i < bytes.len() && bytes[i] == b'<' {
            let mut angle = 0i64;
            while i < bytes.len() {
                match bytes[i] {
                    b'<' => angle += 1,
                    b'>' => {
                        angle -= 1;
                        if angle == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        // Head text runs to the body `{` at angle depth 0.
        let head_start = i;
        let mut angle = 0i64;
        let mut open = None;
        while i < bytes.len() {
            match bytes[i] {
                b'<' => angle += 1,
                b'>' => angle -= 1,
                b'{' if angle <= 0 => {
                    open = Some(i);
                    break;
                }
                b';' if angle <= 0 => break,
                _ => {}
            }
            i += 1;
        }
        let Some(open) = open else { continue };
        let head = &text[head_start..open];
        let ty_text = match head.split(" for ").nth(1) {
            Some(after_for) => after_for,
            None => head,
        };
        let ty_text = ty_text.split("where").next().unwrap_or(ty_text);
        let name = type_head(ty_text.rsplit("::").next().unwrap_or(ty_text));
        if name.is_empty() {
            continue;
        }
        let close = match_brace(bytes, open);
        out.push(FnSpan { name, start: code.line_of(pos), end: code.line_of(close) });
    }
    out
}

// ---------------------------------------------------------------------------
// Manifest parsing and crate discovery
// ---------------------------------------------------------------------------

impl Workspace {
    /// Discovers and models every member crate under `root`.
    ///
    /// Reads `root/Cargo.toml`: a `[workspace]` `members` list (literal
    /// paths and trailing-`/*` globs) yields one crate per member with a
    /// `Cargo.toml`; a bare `[package]` manifest yields the root itself
    /// as the only crate. A missing or memberless manifest yields an
    /// empty model (the line rules still run — see `lint_workspace`).
    pub fn load(root: &Path) -> Workspace {
        let mut ws = Workspace::default();
        let Ok(top) = std::fs::read_to_string(root.join("Cargo.toml")) else {
            return ws;
        };
        let mut dirs = member_dirs(&top, root);
        if dirs.is_empty() && top.contains("[package]") {
            dirs.push(String::new()); // the root itself is the crate
        }
        for dir in dirs {
            if let Some(c) = load_crate(root, &dir) {
                ws.crates.push(c);
            }
        }
        ws
    }
}

/// Expands the `[workspace] members = […]` list into crate directories
/// (workspace-relative, `/`-separated). Only trailing `/*` globs are
/// supported — the only form the workspace uses.
fn member_dirs(top: &str, root: &Path) -> Vec<String> {
    let mut members: Vec<String> = Vec::new();
    let mut in_members = false;
    for raw in top.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if !in_members {
            if line.starts_with("members") && line.contains('=') {
                in_members = true;
            } else {
                continue;
            }
        }
        for piece in line.split('"').skip(1).step_by(2) {
            members.push(piece.to_string());
        }
        if line.contains(']') {
            break;
        }
    }
    let mut dirs = Vec::new();
    for m in members {
        if let Some(prefix) = m.strip_suffix("/*") {
            let Ok(entries) = std::fs::read_dir(root.join(prefix)) else { continue };
            let mut found: Vec<String> = entries
                .flatten()
                .filter(|e| e.path().join("Cargo.toml").is_file())
                .map(|e| format!("{}/{}", prefix, e.file_name().to_string_lossy()))
                .collect();
            found.sort();
            dirs.extend(found);
        } else if root.join(&m).join("Cargo.toml").is_file() {
            dirs.push(m);
        }
    }
    dirs
}

/// Manifest sections whose keys are dependency declarations.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ManifestSection {
    Deps,
    DevDeps,
    Other,
}

fn load_crate(root: &Path, dir: &str) -> Option<CrateModel> {
    let crate_root = if dir.is_empty() { root.to_path_buf() } else { root.join(dir) };
    let manifest_path_abs = crate_root.join("Cargo.toml");
    let text = std::fs::read_to_string(&manifest_path_abs).ok()?;
    let manifest_path =
        if dir.is_empty() { "Cargo.toml".to_string() } else { format!("{dir}/Cargo.toml") };

    let mut name = String::new();
    let mut deps = Vec::new();
    let mut dev_deps = Vec::new();
    let mut section = ManifestSection::Other;
    let mut in_package = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            section = match line {
                "[dependencies]" => ManifestSection::Deps,
                "[dev-dependencies]" => ManifestSection::DevDeps,
                _ => ManifestSection::Other,
            };
            in_package = line == "[package]";
            continue;
        }
        if in_package && name.is_empty() {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    name = v.trim().trim_matches('"').to_string();
                }
            }
        }
        if section == ManifestSection::Other || line.is_empty() {
            continue;
        }
        // `foo = …`, `foo.workspace = true`: the dep name is the key up
        // to the first `.`, `=`, or whitespace.
        let key: String =
            line.chars().take_while(|&c| c != '.' && c != '=' && !c.is_whitespace()).collect();
        if key.is_empty() {
            continue;
        }
        let dep = Dep { name: key, line: idx + 1 };
        match section {
            ManifestSection::Deps => deps.push(dep),
            ManifestSection::DevDeps => dev_deps.push(dep),
            ManifestSection::Other => {}
        }
    }
    if name.is_empty() {
        return None;
    }

    let mut files = Vec::new();
    for path in crate::rust_files(&crate_root) {
        let Ok(src) = std::fs::read_to_string(&path) else { continue };
        let rel_crate = path.strip_prefix(&crate_root).unwrap_or(&path).to_string_lossy();
        let rel_crate = rel_crate.replace('\\', "/");
        let test_role = ["tests/", "benches/", "examples/"]
            .iter()
            .any(|p| rel_crate.starts_with(p) || rel_crate.contains(&format!("/{p}")));
        let rel_ws = if dir.is_empty() { rel_crate.clone() } else { format!("{dir}/{rel_crate}") };
        files.push(FileModel::build(rel_ws, scan(&src), test_role));
    }

    Some(CrateModel {
        name,
        dir: dir.to_string(),
        manifest_path,
        manifest_lines: text.lines().map(str::to_string).collect(),
        deps,
        dev_deps,
        files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> FileModel {
        FileModel::build("crates/epg-x/src/lib.rs".into(), scan(src), false)
    }

    #[test]
    fn fn_spans_cover_signature_and_body() {
        let f = file("fn alpha(x: u32) -> u32 {\n    x + 1\n}\n\nfn beta() {}\n");
        assert_eq!(f.fns.len(), 2);
        assert_eq!((f.fns[0].name.as_str(), f.fns[0].start, f.fns[0].end), ("alpha", 1, 3));
        assert_eq!((f.fns[1].name.as_str(), f.fns[1].start, f.fns[1].end), ("beta", 5, 5));
    }

    #[test]
    fn bodiless_trait_method_spans_its_signature() {
        let src =
            "trait T {\n    fn load_file(\n        &mut self,\n    ) -> std::io::Result<()>;\n}\n";
        let f = file(src);
        let lf = f.fns.iter().find(|s| s.name == "load_file").unwrap();
        assert_eq!((lf.start, lf.end), (2, 4));
        assert!(f.in_fn_named(4, "load_file"));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let f = file("type F = fn(usize) -> bool;\nstruct S(fn());\n");
        assert!(f.fns.is_empty(), "{:?}", f.fns);
    }

    #[test]
    fn multiline_params_with_closures_resolve_body() {
        let src = "fn outer<F: Fn(usize) -> bool>(\n    f: F,\n) -> bool {\n    f(1)\n}\n";
        let f = file(src);
        assert_eq!((f.fns[0].start, f.fns[0].end), (1, 5));
    }

    #[test]
    fn cfg_test_mod_is_a_test_span() {
        let src = "fn real() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        x.unwrap();\n    }\n}\n";
        let f = file(src);
        assert!(!f.in_test(1));
        assert!(f.in_test(7));
    }

    #[test]
    fn test_attr_fn_is_a_test_span() {
        let src = "#[test]\nfn check() {\n    y.unwrap();\n}\nfn real() {}\n";
        let f = file(src);
        assert!(f.in_test(3));
        assert!(!f.in_test(5));
    }

    #[test]
    fn loop_while_for_bodies_are_spans() {
        let src = "fn f(xs: &[u32]) {\n    loop {\n        break;\n    }\n    while xs.len() > 0 {\n        g();\n    }\n    for x in xs {\n        h(x);\n    }\n}\n";
        let f = file(src);
        assert_eq!(f.loops, vec![(2, 4), (5, 7), (8, 10)]);
        assert!(f.in_loop_or_worker(3));
        assert!(!f.in_loop_or_worker(1));
    }

    #[test]
    fn impl_for_and_hrtb_are_not_loops() {
        let src = "impl Clone for Foo {\n    fn clone(&self) -> Foo {\n        Foo\n    }\n}\nfn g<F>(f: F)\nwhere\n    for<'a> F: Fn(&'a u32),\n{\n}\n";
        let f = file(src);
        assert!(f.loops.is_empty(), "{:?}", f.loops);
    }

    #[test]
    fn parallel_call_args_are_worker_spans() {
        let src = "fn f(pool: &ThreadPool) {\n    pool.parallel_for(n, sched, |v| {\n        out[v] = 1;\n    });\n    plain();\n}\n";
        let f = file(src);
        assert_eq!(f.par_calls, vec![(2, 4)]);
        assert!(f.in_loop_or_worker(3));
        assert!(!f.in_loop_or_worker(5));
    }

    #[test]
    fn epg_refs_require_path_sep_and_skip_strings() {
        let src = "use epg_graph::Csr;\nlet epg_out = 1;\nlet s = \"epg_harness::x\";\nepg_trace::Event::new();\n";
        let f = file(src);
        let got: Vec<(String, usize)> =
            f.epg_refs.iter().map(|r| (r.krate.clone(), r.line)).collect();
        assert_eq!(got, vec![("epg-graph".into(), 1), ("epg-trace".into(), 4)]);
    }

    #[test]
    fn token_lines_dedup_and_respect_boundaries() {
        let src = "a.unwrap(); b.unwrap();\nmy_unwrap();\nstd::fs::read(x);\nnot_std::fs();\n";
        let f = file(src);
        assert_eq!(f.token_lines(".unwrap()"), vec![1]);
        assert_eq!(f.token_lines("std::fs"), vec![3], "prefix `not_std::fs` must not match");
    }

    #[test]
    fn call_sites_classify_free_method_and_qualified() {
        let src = "fn f(x: &X) {\n    helper(1);\n    x.compute(2);\n    Flight::new();\n    std::mem::drop(x);\n    check::next_id();\n    println!(\"skip\");\n    Self::reset();\n}\n";
        let f = file(src);
        let got: Vec<(&str, CallKind, usize)> =
            f.calls.iter().map(|c| (c.name.as_str(), c.kind.clone(), c.line)).collect();
        assert_eq!(
            got,
            vec![
                ("helper", CallKind::Free, 2),
                ("compute", CallKind::Method, 3),
                ("new", CallKind::Qualified("Flight".into()), 4),
                ("drop", CallKind::Free, 5),
                ("next_id", CallKind::Free, 6),
                ("reset", CallKind::Qualified("Self".into()), 8),
            ]
        );
    }

    #[test]
    fn fn_definitions_and_keywords_are_not_calls() {
        let src = "pub fn alpha(x: u32) -> u32 {\n    if (x > 1) && matches!(x, 2) {\n        return beta(x);\n    }\n    x\n}\n";
        let f = file(src);
        let names: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["beta"]);
    }

    #[test]
    fn struct_fields_expose_unwrapped_type_heads() {
        let src = "pub struct Flight {\n    slot: Mutex<Option<u32>>,\n    cv: Condvar,\n    pub shared: Arc<RwLock<Vec<u8>>>,\n    n: usize,\n}\nstruct Unit;\nstruct Pair(u32, u32);\n";
        let f = file(src);
        assert_eq!(f.structs.len(), 3);
        let s = &f.structs[0];
        assert_eq!((s.name.as_str(), s.start, s.end), ("Flight", 1, 6));
        let got: Vec<(&str, &str, usize)> =
            s.fields.iter().map(|fl| (fl.name.as_str(), fl.ty_head.as_str(), fl.line)).collect();
        assert_eq!(
            got,
            vec![
                ("slot", "Mutex", 2),
                ("cv", "Condvar", 3),
                ("shared", "RwLock", 4),
                ("n", "usize", 5),
            ]
        );
        assert!(f.structs[1].fields.is_empty());
        assert!(f.structs[2].fields.is_empty());
    }

    #[test]
    fn impl_spans_name_the_self_type() {
        let src = "impl Flight {\n    fn new() -> Flight {\n        todo()\n    }\n}\n\nimpl<T> Drop for Guard<'_, T> {\n    fn drop(&mut self) {}\n}\n\nfn ret() -> impl Iterator<Item = u32> {\n    std::iter::empty()\n}\n";
        let f = file(src);
        let got: Vec<(&str, usize, usize)> =
            f.impls.iter().map(|i| (i.name.as_str(), i.start, i.end)).collect();
        assert_eq!(got, vec![("Flight", 1, 5), ("Guard", 7, 9)]);
    }

    #[test]
    fn block_end_bounds_the_innermost_brace_scope() {
        let src = "fn f() {\n    let a = {\n        let g = m.lock();\n        g.v\n    };\n    after(a);\n}\n";
        let f = file(src);
        assert_eq!(f.block_end(3), 5, "inner block closes on line 5");
        assert_eq!(f.block_end(6), 7, "fn body closes on line 7");
        assert_eq!(f.block_end(1), f.lines.len(), "top level extends to the last line");
    }

    #[test]
    fn member_globs_and_literals_expand() {
        let dir = std::env::temp_dir().join("epg-lint-model-members");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/a/src")).unwrap();
        std::fs::create_dir_all(dir.join("solo/src")).unwrap();
        std::fs::write(
            dir.join("Cargo.toml"),
            "[workspace]\nmembers = [\n    \"crates/*\",\n    \"solo\",\n]\n",
        )
        .unwrap();
        std::fs::write(dir.join("crates/a/Cargo.toml"), "[package]\nname = \"a\"\n").unwrap();
        std::fs::write(dir.join("crates/a/src/lib.rs"), "pub fn a() {}\n").unwrap();
        std::fs::write(
            dir.join("solo/Cargo.toml"),
            "[package]\nname = \"solo\"\n\n[dependencies]\na = { path = \"../crates/a\" }\n\n[dev-dependencies]\nproptest.workspace = true\n",
        )
        .unwrap();
        std::fs::write(dir.join("solo/src/lib.rs"), "pub fn s() {}\n").unwrap();
        let ws = Workspace::load(&dir);
        let names: Vec<&str> = ws.crates.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "solo"]);
        let solo = &ws.crates[1];
        assert_eq!(solo.deps, vec![Dep { name: "a".into(), line: 5 }]);
        assert_eq!(solo.dev_deps, vec![Dep { name: "proptest".into(), line: 8 }]);
        assert_eq!(solo.files.len(), 1);
        assert_eq!(solo.files[0].path, "solo/src/lib.rs");
        std::fs::remove_dir_all(&dir).ok();
    }
}
