//! The `phase-purity` and `timing-discipline` rule families.
//!
//! The paper's methodology stands on two structural invariants
//! (DESIGN.md §10, after GAP and the graph-benchmark SoK):
//!
//! * **Phase purity** — the file-read phase may never leak into the timed
//!   algorithm phase. Inside the engine crates, file I/O is confined to
//!   each engine's `load_file` implementation (the read phase the harness
//!   times separately); any `std::fs`/`std::io`/`BufReader`-shaped token
//!   reachable from other engine code is a fairness bug, not style.
//! * **Timing discipline** — the harness owns the clock. Engines (and the
//!   substrate crates beneath them) may not read wall-clock time, so no
//!   engine can self-time and report a flattering span. Clock reads are
//!   permitted only in `epg-harness` and `epg-trace`; designated timer
//!   modules elsewhere (the thread pool's telemetry spans, the bench
//!   drivers) are recorded as reasoned `epg-lint.toml` exceptions.
//!
//! Both rules skip test-role files (`tests/`, `benches/`, `examples/`)
//! and `#[cfg(test)]`/`#[test]` spans: test code legitimately builds
//! fixtures on disk and calibrates against the wall clock.

use crate::arch::{is_engine_crate, layer_of};
use crate::model::{FileModel, Workspace};
use crate::rules::Finding;

/// Stable rule id: file I/O outside `load_file` in engine code.
pub const RULE_PHASE: &str = "phase-purity";

/// Stable rule id: wall-clock reads outside the measurement owners.
pub const RULE_TIMING: &str = "timing-discipline";

/// Tokens that mark file-I/O reachability in engine code.
pub(crate) const IO_TOKENS: &[&str] =
    &["std::fs", "std::io", "File::open", "File::create", "BufReader", "BufWriter", "OpenOptions"];

/// Tokens that read the wall clock.
pub(crate) const TIME_TOKENS: &[&str] = &["Instant::now", "SystemTime"];

/// Crates that own measurement: the harness times runs, the trace crate
/// stamps telemetry, and the serve layer stamps per-query latency (it is
/// a timed I/O layer like the harness, not a measured engine).
const TIMING_OWNERS: &[&str] = &["epg-harness", "epg-trace", "epg-serve"];

/// Runs both rule families over the workspace model.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for c in &ws.crates {
        if is_engine_crate(&c.name) || c.name == "epg-engine-api" {
            for f in &c.files {
                check_phase_purity(f, out);
            }
        }
        if layer_of(&c.name).is_some() && !TIMING_OWNERS.contains(&c.name.as_str()) {
            for f in &c.files {
                check_timing(f, out);
            }
        }
    }
}

fn check_phase_purity(f: &FileModel, out: &mut Vec<Finding>) {
    if f.test_role {
        return;
    }
    for tok in IO_TOKENS {
        for line in f.token_lines(tok) {
            if f.in_test(line) || f.in_fn_named(line, "load_file") {
                continue;
            }
            out.push(Finding {
                file: f.path.clone(),
                line,
                rule: RULE_PHASE,
                message: format!(
                    "`{tok}` in engine code outside `load_file`: file I/O is the read phase and \
                     must never be reachable from the timed algorithm phase"
                ),
            });
        }
    }
}

fn check_timing(f: &FileModel, out: &mut Vec<Finding>) {
    if f.test_role {
        return;
    }
    for tok in TIME_TOKENS {
        for line in f.token_lines(tok) {
            if f.in_test(line) {
                continue;
            }
            out.push(Finding {
                file: f.path.clone(),
                line,
                rule: RULE_TIMING,
                message: format!(
                    "`{tok}` outside epg-harness/epg-trace/epg-serve: the harness owns the clock; engines \
                     and substrate code must not self-time (designate audited timer modules in \
                     epg-lint.toml)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CrateModel;
    use crate::scan::scan;

    fn krate(name: &str, src: &str, test_role: bool) -> CrateModel {
        CrateModel {
            name: name.to_string(),
            dir: format!("crates/{name}"),
            manifest_path: format!("crates/{name}/Cargo.toml"),
            manifest_lines: Vec::new(),
            deps: Vec::new(),
            dev_deps: Vec::new(),
            files: vec![FileModel::build(
                format!("crates/{name}/src/lib.rs"),
                scan(src),
                test_role,
            )],
        }
    }

    fn run(c: CrateModel) -> Vec<Finding> {
        let ws = Workspace { crates: vec![c] };
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn io_outside_load_file_is_flagged() {
        let src = "pub fn kernel(p: &str) {\n    let _ = std::fs::read_to_string(p);\n}\n";
        let f = run(krate("epg-engine-gap", src, false));
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), (RULE_PHASE, 2));
    }

    #[test]
    fn io_inside_load_file_is_the_read_phase() {
        let src = "impl Engine for E {\n    fn load_file(&mut self, p: &Path) -> std::io::Result<()> {\n        let text = std::fs::read_to_string(p)?;\n        Ok(())\n    }\n}\n";
        assert!(run(krate("epg-engine-gap", src, false)).is_empty());
    }

    #[test]
    fn bodiless_load_file_declaration_is_exempt() {
        let src = "pub trait Engine {\n    fn load_file(&mut self, p: &Path) -> std::io::Result<()>;\n}\n";
        assert!(run(krate("epg-engine-api", src, false)).is_empty());
    }

    #[test]
    fn io_in_test_module_is_exempt() {
        let src = "pub fn kernel() {}\n\n#[cfg(test)]\nmod tests {\n    fn fixture() {\n        std::fs::create_dir_all(\"x\").unwrap();\n    }\n}\n";
        assert!(run(krate("epg-engine-gap", src, false)).is_empty());
    }

    #[test]
    fn io_in_non_engine_crates_is_out_of_scope() {
        let src = "pub fn write(p: &str) {\n    let _ = std::fs::write(p, \"x\");\n}\n";
        assert!(run(krate("epg-graph", src, false)).is_empty());
    }

    #[test]
    fn clock_reads_in_engines_and_substrate_are_flagged() {
        let src = "pub fn f() {\n    let t = std::time::Instant::now();\n    drop(t);\n}\n";
        for name in ["epg-engine-gap", "epg-parallel", "epg-graph", "epg-machine"] {
            let f = run(krate(name, src, false));
            assert_eq!(f.len(), 1, "{name}");
            assert_eq!((f[0].rule, f[0].line), (RULE_TIMING, 2), "{name}");
        }
    }

    #[test]
    fn harness_and_trace_own_the_clock() {
        let src = "pub fn f() {\n    let t = std::time::Instant::now();\n    drop(t);\n}\n";
        assert!(run(krate("epg-harness", src, false)).is_empty());
        assert!(run(krate("epg-trace", src, false)).is_empty());
    }

    #[test]
    fn test_role_files_and_vendored_crates_are_exempt() {
        let src = "pub fn f() {\n    let t = std::time::Instant::now();\n    drop(t);\n}\n";
        assert!(run(krate("epg-engine-gap", src, true)).is_empty());
        assert!(run(krate("criterion", src, false)).is_empty());
    }

    #[test]
    fn system_time_is_a_clock_read() {
        let src = "pub fn f() -> std::time::SystemTime {\n    todo()\n}\n";
        let f = run(krate("epg-graph", src, false));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_TIMING);
    }
}
