//! The `layering` rule family: the crate DAG must flow strictly downward.
//!
//! The paper's comparison is only fair if the five engine crates are
//! interchangeable behind `epg-engine-api` — an engine that reached into a
//! sibling engine, or into the harness that times it, could share state or
//! skew measurement. The layer map below is the workspace's declared
//! architecture (DESIGN.md §10):
//!
//! ```text
//! 0  epg-trace, epg-lint
//! 1  epg-parallel
//! 2  epg-graph
//! 3  epg-generator, epg-engine-api
//! 4  epg-machine, epg-engine-* (the five engines)
//! 5  epg-serve
//! 6  epg-harness
//! 7  epg (facade)
//! 8  epg-bench
//! ```
//!
//! Checked twice: against the **declared DAG** (`[dependencies]` and
//! `[dev-dependencies]` in each `Cargo.toml`) and against **actual
//! occurrences** (`use epg_*` imports and inline `epg_*::` paths in
//! non-test code), so a path that sneaks around an undeclared dependency
//! (e.g. through the facade) is caught at the line that uses it. Engine
//! crates are additionally restricted to an explicit allowed set — the
//! API they implement and the substrate beneath it.

use crate::model::{CrateModel, Workspace};
use crate::rules::Finding;

/// Stable rule id for this family.
pub const RULE_LAYERING: &str = "layering";

/// Whether `name` is one of the five engine crates (not the API crate).
pub fn is_engine_crate(name: &str) -> bool {
    name.starts_with("epg-engine-") && name != "epg-engine-api"
}

/// The only crates an engine's `[dependencies]` (and non-test code) may
/// reference: the API it implements and the substrate beneath it.
pub const ENGINE_ALLOWED: &[&str] = &["epg-engine-api", "epg-graph", "epg-parallel", "epg-trace"];

/// The crate's layer in the declared architecture, or `None` for crates
/// outside the policy (vendored stand-ins).
pub fn layer_of(name: &str) -> Option<u8> {
    if is_engine_crate(name) {
        return Some(4);
    }
    Some(match name {
        "epg-trace" | "epg-lint" => 0,
        "epg-parallel" => 1,
        "epg-graph" => 2,
        "epg-generator" | "epg-engine-api" => 3,
        "epg-machine" => 4,
        "epg-serve" => 5,
        "epg-harness" => 6,
        "epg" => 7,
        "epg-bench" => 8,
        _ => return None,
    })
}

/// Runs the layering checks over the whole workspace model.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for c in &ws.crates {
        let Some(own) = layer_of(&c.name) else { continue };
        check_declared(c, own, out);
        check_occurrences(c, own, out);
    }
}

fn violation(c: &CrateModel, dep: &str) -> Option<String> {
    let own = layer_of(&c.name)?;
    let dl = layer_of(dep)?;
    if is_engine_crate(&c.name) && !ENGINE_ALLOWED.contains(&dep) {
        return Some(format!(
            "engine crate `{}` may reference only {} (never a sibling engine or the harness \
             that times it); found `{dep}`",
            c.name,
            ENGINE_ALLOWED.join("/"),
        ));
    }
    if dl >= own {
        return Some(format!(
            "`{}` (layer {own}) may not reference `{dep}` (layer {dl}); the crate DAG flows \
             strictly downward",
            c.name,
        ));
    }
    None
}

fn check_declared(c: &CrateModel, own: u8, out: &mut Vec<Finding>) {
    for dep in &c.deps {
        if let Some(msg) = violation(c, &dep.name) {
            out.push(Finding {
                file: c.manifest_path.clone(),
                line: dep.line,
                rule: RULE_LAYERING,
                message: format!("{msg} (declared dependency)"),
            });
        }
    }
    // Dev-dependencies serve tests, so the engine allowed-set does not
    // apply (engines legitimately generate inputs with epg-generator in
    // unit tests) — but the layer order still does.
    for dep in &c.dev_deps {
        let Some(dl) = layer_of(&dep.name) else { continue };
        if dl >= own {
            out.push(Finding {
                file: c.manifest_path.clone(),
                line: dep.line,
                rule: RULE_LAYERING,
                message: format!(
                    "`{}` (layer {own}) may not dev-depend on `{}` (layer {dl}); the crate DAG \
                     flows strictly downward",
                    c.name, dep.name
                ),
            });
        }
    }
}

fn check_occurrences(c: &CrateModel, _own: u8, out: &mut Vec<Finding>) {
    for f in &c.files {
        if f.test_role {
            continue;
        }
        for r in &f.epg_refs {
            if r.krate == c.name || f.in_test(r.line) {
                continue;
            }
            if let Some(msg) = violation(c, &r.krate) {
                out.push(Finding {
                    file: f.path.clone(),
                    line: r.line,
                    rule: RULE_LAYERING,
                    message: format!("{msg} (path occurrence)"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Dep, FileModel};
    use crate::scan::scan;

    fn krate(name: &str, deps: &[(&str, usize)], src: &str) -> CrateModel {
        CrateModel {
            name: name.to_string(),
            dir: format!("crates/{name}"),
            manifest_path: format!("crates/{name}/Cargo.toml"),
            manifest_lines: Vec::new(),
            deps: deps.iter().map(|&(n, l)| Dep { name: n.into(), line: l }).collect(),
            dev_deps: Vec::new(),
            files: vec![FileModel::build(format!("crates/{name}/src/lib.rs"), scan(src), false)],
        }
    }

    fn run(c: CrateModel) -> Vec<Finding> {
        let ws = Workspace { crates: vec![c] };
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn engine_depending_on_harness_is_flagged() {
        let f = run(krate("epg-engine-gap", &[("epg-harness", 9)], ""));
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].file.as_str(), f[0].line), ("crates/epg-engine-gap/Cargo.toml", 9));
        assert!(f[0].message.contains("sibling engine or the harness"), "{}", f[0].message);
    }

    #[test]
    fn engine_depending_on_sibling_engine_is_flagged() {
        let f = run(krate("epg-engine-gap", &[("epg-engine-graphmat", 11)], ""));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_LAYERING);
    }

    #[test]
    fn engine_allowed_set_passes() {
        let deps =
            [("epg-engine-api", 9), ("epg-graph", 10), ("epg-parallel", 11), ("epg-trace", 12)];
        assert!(run(krate("epg-engine-gap", &deps, "")).is_empty());
    }

    #[test]
    fn substrate_depending_upward_is_flagged() {
        let f = run(krate("epg-graph", &[("epg-harness", 7)], ""));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("strictly downward"), "{}", f[0].message);
    }

    #[test]
    fn use_occurrence_of_forbidden_crate_is_flagged() {
        let src = "use epg_harness::runner::Runner;\n\npub fn f() {\n    epg_graph::csr();\n}\n";
        let f = run(krate("epg-engine-gap", &[], src));
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].file.as_str(), f[0].line), ("crates/epg-engine-gap/src/lib.rs", 1));
        assert!(f[0].message.ends_with("(path occurrence)"), "{}", f[0].message);
    }

    #[test]
    fn test_module_occurrences_are_exempt() {
        let src =
            "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    use epg_generator::GraphSpec;\n}\n";
        assert!(run(krate("epg-engine-gap", &[], src)).is_empty());
    }

    #[test]
    fn dev_dep_below_own_layer_passes_for_engines() {
        let mut c = krate("epg-engine-gap", &[], "");
        c.dev_deps = vec![Dep { name: "epg-generator".into(), line: 20 }];
        assert!(run(c).is_empty());
    }

    #[test]
    fn dev_dep_at_or_above_own_layer_is_flagged() {
        let mut c = krate("epg-graph", &[], "");
        c.dev_deps = vec![Dep { name: "epg-harness".into(), line: 21 }];
        let f = run(c);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("dev-depend"), "{}", f[0].message);
    }

    #[test]
    fn vendored_crates_are_outside_the_policy() {
        assert!(run(krate("epg-engine-gap", &[("rand", 5), ("parking_lot", 6)], "")).is_empty());
        assert!(run(krate("rand", &[("epg-harness", 3)], "")).is_empty());
    }
}
