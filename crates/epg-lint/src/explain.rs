//! `--explain <rule-id>`: the rule catalog as living documentation.
//!
//! Every stable rule id across the four families — PR 1's line rules,
//! PR 5's architecture rules, PR 6's concurrency dataflow rules, PR 10's
//! locking rules — has an entry here with its rationale, an example
//! violation, and the fix pattern. A test pins the catalog to the rule ids the checkers emit,
//! so a new rule cannot ship undocumented.

/// One rule's documentation, rendered by [`render`].
#[derive(Debug)]
pub struct RuleDoc {
    /// The stable id printed in findings (`[rule-id]`).
    pub id: &'static str,
    /// The rule family: `line`, `architecture`, `concurrency`, or
    /// `locking`.
    pub family: &'static str,
    /// What the rule proves and why the comparison needs it.
    pub rationale: &'static str,
    /// A minimal violating snippet.
    pub example: &'static str,
    /// The idiomatic fix, plus the escape hatch when the code is right.
    pub fix: &'static str,
}

/// The full catalog, ordered by family then id.
pub const CATALOG: &[RuleDoc] = &[
    // --- line rules (PR 1) -------------------------------------------------
    RuleDoc {
        id: "safety-comment",
        family: "line",
        rationale: "Every `unsafe` block or fn must carry a `// SAFETY:` comment on or above \
                    it. The pool's job dispatch and DisjointWriter's aliasing argument are \
                    load-bearing: an undocumented unsafe block is an unreviewable one.",
        example: "unsafe { *slot.get_raw(v) = dist };",
        fix: "Write the invariant, not the mechanics: `// SAFETY: v is owned by this worker's \
              range; ranges are disjoint by construction.` No allowlist escape — the comment \
              is the escape.",
    },
    RuleDoc {
        id: "unsafe-impl",
        family: "line",
        rationale: "`unsafe impl Send`/`Sync` asserts thread-safety the compiler cannot check; \
                    such assertions are contained to `epg-parallel`, the one crate whose job \
                    is to be audited for them.",
        example: "unsafe impl<T> Sync for MyCell<T> {}  // in an engine crate",
        fix: "Move the abstraction into epg-parallel behind a safe API, or use the existing \
              DisjointWriter/atomics. Audited exceptions: an `epg-lint.toml` entry with the \
              audit reason.",
    },
    RuleDoc {
        id: "raw-ptr-field",
        family: "line",
        rationale: "Struct fields of raw-pointer type (`*const T`/`*mut T`) outside \
                    epg-parallel smuggle aliasing obligations into crates that are not \
                    audited for them.",
        example: "struct Frontier { data: *mut u32 }  // in an engine crate",
        fix: "Hold a slice, an index range, or a DisjointWriter handle instead; the substrate \
              owns the pointers. Escape hatch: `epg-lint.toml` with the audit reason.",
    },
    RuleDoc {
        id: "cas-ordering",
        family: "line",
        rationale: "A compare-exchange failure ordering stronger than its success ordering is \
                    either a typo or a misunderstanding; both read as bugs in review and cost \
                    cycles on ARM-class memory models.",
        example: "x.compare_exchange(a, b, Ordering::Relaxed, Ordering::SeqCst)",
        fix: "Derive the failure ordering from the success ordering \
              (`cas_failure_order(success)` in epg-parallel) — failure needs at most the \
              success ordering's load half.",
    },
    RuleDoc {
        id: "static-mut",
        family: "line",
        rationale: "`static mut` is unsynchronized global state — a data race waiting for a \
                    second thread, and the engines always have a second thread.",
        example: "static mut SCRATCH: Vec<u32> = Vec::new();",
        fix: "Use an atomic, a `OnceLock`/lazy init, or pass state through the pool's worker \
              arguments. No allowlist escape: the workspace bans it outright.",
    },
    // --- architecture rules (PR 5) ----------------------------------------
    RuleDoc {
        id: "layering",
        family: "architecture",
        rationale: "The crate DAG is the experiment's control surface: engines depend only on \
                    the substrate and the API crate, never on the harness or each other, so \
                    one engine cannot observe or perturb another.",
        example: "# crates/epg-engine-gap/Cargo.toml\n[dependencies]\nepg-harness = { path = \
                  \"../epg-harness\" }",
        fix: "Move the shared code down a layer (epg-graph, epg-parallel, epg-engine-api) or \
              up into the harness. The allowed edges are the `ENGINE_ALLOWED` table in \
              `arch.rs`.",
    },
    RuleDoc {
        id: "phase-purity",
        family: "architecture",
        rationale: "File I/O belongs to the read phase only. An engine that touches the \
                    filesystem inside its run path hides I/O latency inside its measured \
                    kernel time — the SoK's classic unfair-comparison fault.",
        example: "let edges = std::fs::read_to_string(path)?;  // inside Engine::run",
        fix: "Load in `load_file`/the dataset layer; pass the engine an in-memory `Csr`. \
              Escape hatch: `epg-lint.toml` for tooling crates that are I/O by design.",
    },
    RuleDoc {
        id: "timing-discipline",
        family: "architecture",
        rationale: "The harness owns the clock. Engines reading `Instant::now` (or friends) \
                    can self-report flattering timings; one timer in one place keeps the five \
                    engines comparable.",
        example: "let t0 = std::time::Instant::now();  // inside an engine crate",
        fix: "Report iterations/phases through `RunRecorder`; the harness timestamps around \
              the call. Designated timer modules (trace telemetry, bench drivers) are audited \
              in `epg-lint.toml`.",
    },
    RuleDoc {
        id: "panic-discipline",
        family: "architecture",
        rationale: "Engine hot paths must fail through the supervised `TrialOutcome` path, \
                    not `unwrap`/`expect`/`panic!` — a panic inside a worker poisons the pool \
                    and turns one engine's bug into every engine's DNF.",
        example: "let d = dist[u].checked_add(w).unwrap();  // inside an iteration loop",
        fix: "Propagate an error to the trial supervisor or use a checked/saturating \
              operation. Escape hatch: `epg-lint.toml` with a reason when the invariant is \
              locally provable.",
    },
    // --- concurrency dataflow rules (PR 6) --------------------------------
    RuleDoc {
        id: "shared-mutable-capture",
        family: "concurrency",
        rationale: "A worker closure assigning directly to a captured place (`out[v] = …`, \
                    `total += …`) races: every worker executes the same closure. This is the \
                    static twin of the `check-disjoint` dynamic detector — mutation of shared \
                    state must go through DisjointWriter, atomics, or a lock.",
        example: "pool.parallel_for(n, sched, |v| {\n    dist[v] = level;  // `dist` captured \
                  by every worker\n});",
        fix: "Route the write through `DisjointWriter` (with its SAFETY argument), an atomic \
              cell, or a per-worker buffer merged after the region. API-mediated writes \
              (`*w.get_raw(v) = …`) are recognized and not flagged.",
    },
    RuleDoc {
        id: "cancellation-coverage",
        family: "concurrency",
        rationale: "Every engine iteration loop (marked by its `rec.iteration(…)` telemetry \
                    call) must poll `is_cancelled()`, or a trial past its time budget cannot \
                    unwind cooperatively and the DNF accounting under-reports the engine's \
                    true cost.",
        example: "while !frontier.is_empty() {\n    relax_edges(…);\n    rec.iteration(n);\n}  \
                  // no poll site",
        fix: "Poll at the top of the loop: `if pool.is_cancelled() { outcome = \
              Cancelled; break; }`. Loops without a `rec.iteration` call are untimed and out \
              of scope.",
    },
    RuleDoc {
        id: "atomic-ordering",
        family: "concurrency",
        rationale: "Extends `cas-ordering` to the sites it cannot see: `SeqCst` inside hot \
                    loop bodies or worker closures (and anywhere in the epg-parallel \
                    substrate) where acquire/release suffices, and `Relaxed` loads of \
                    cross-thread flags (cancel/stop/done/…) that need an Acquire load to \
                    observe the writes published before the flag was raised.",
        example: "while active.load(Ordering::Relaxed) {\n    counter.fetch_add(1, \
                  Ordering::SeqCst);\n}",
        fix: "Publish with Release, observe with Acquire; use Relaxed only for counters with \
              no payload. The audited `CancelToken::is_cancelled` fast path is the one \
              built-in exception; others need an `epg-lint.toml` entry with the audit \
              argument.",
    },
    RuleDoc {
        id: "hot-loop-alloc",
        family: "concurrency",
        rationale: "Allocation inside a timed span — an iteration loop, a loop dispatching \
                    parallel work, or a worker closure — is hidden work that skews the \
                    engine comparison. `Vec::new` plus push-growth pays its reallocations \
                    inside the measured region.",
        example: "while !frontier.is_empty() {\n    let next: Vec<u32> = frontier.iter()\n        \
                  .flat_map(|v| out_edges(v)).collect();  // allocates every level\n    …\n}",
        fix: "Hoist buffers out of the loop and reuse them (`Vec::with_capacity` outside, \
              `clear()` inside), or collect per-worker and merge once. Bounded one-shot \
              allocations that are part of the algorithm's output get a reasoned \
              `epg-lint.toml` entry.",
    },
    // --- locking rules (PR 10) ---------------------------------------------
    RuleDoc {
        id: "lock-order-cycle",
        family: "locking",
        rationale: "Two threads acquiring the same named locks in opposite orders deadlock \
                    under the right interleaving. The checker builds a global \
                    lock-acquisition graph over `Mutex`/`RwLock` struct fields — an edge A→B \
                    wherever B is acquired while A's guard is live, directly or through \
                    callees — and any cycle is a finding, whether or not today's schedule \
                    ever hits it.",
        example: "fn sweep(&self) {\n    let reg = self.registry.lock();\n    \
                  self.store.lock();  // Registry.inner → Store.slots\n}\nfn flush(&self) {\n    \
                  let s = self.store.lock();\n    self.registry.lock();  // Store.slots → \
                  Registry.inner\n}",
        fix: "Pick one global acquisition order and restructure the violating path — usually \
              by copying what's needed out of the first lock before taking the second. \
              Same-field self-edges are not reported (two instances of one struct are \
              indistinguishable statically); those need a runtime ordering argument in a \
              SAFETY comment.",
    },
    RuleDoc {
        id: "blocking-while-locked",
        family: "locking",
        rationale: "A traversal, `QueryEngine` call, `Condvar::wait`, or file I/O executed \
                    while a service lock is held turns that lock into a convoy: every other \
                    request serializes behind one caller's slow operation. Reachability is \
                    transitive — a helper that blocks three calls down is found and reported \
                    as a call chain.",
        example: "let mut cache = self.cache.lock();\nlet result = \
                  self.engine.query(req);  // traversal under the cache lock\ncache.insert(key, \
                  result);",
        fix: "Shrink the critical section: clone/move what's needed out of the guard scope, \
              run the blocking operation unlocked, then re-lock to publish. \
              `Condvar::wait(&mut guard)` on the lock's own (and only) guard is the blessed \
              wait idiom and is not flagged.",
    },
    RuleDoc {
        id: "condvar-wait-loop",
        family: "locking",
        rationale: "`Condvar::wait` returns on spurious wakeups and on notifications meant \
                    for other predicates; a wait outside a predicate loop proceeds on \
                    unverified state. Every wait must re-check its condition.",
        example: "let mut slot = self.slot.lock();\nif slot.is_none() {\n    \
                  self.cv.wait(&mut slot);  // single-shot wait\n}",
        fix: "Wrap the wait in the predicate loop: `while slot.is_none() { \
              self.cv.wait(&mut slot); }` — the loop body is the wakeup filter. There is no \
              allowlist escape; spurious wakeups are not an audit question.",
    },
    RuleDoc {
        id: "guard-across-span",
        family: "locking",
        rationale: "A guard held across a `Tracer` span boundary folds lock-wait time into \
                    the recorded span; held across a pool dispatch it serializes the region \
                    it fans out; held across a `notify` it wakes threads into a mutex the \
                    notifier still owns, burning a scheduler round-trip per wakeup.",
        example: "let mut st = self.inner.state.lock();\nst.gen += 1;\n\
                  self.work_cv.notify_all();  // woken workers block on `st`",
        fix: "End the guard before the boundary: close the scope (or `drop(guard)`), then \
              notify/dispatch/record. For state that must be read under the lock, copy it \
              out first — the notify itself never needs the lock.",
    },
];

/// Looks up a rule id in the catalog.
pub fn lookup(id: &str) -> Option<&'static RuleDoc> {
    CATALOG.iter().find(|d| d.id == id)
}

/// All stable rule ids, catalog order — for error messages and tests.
pub fn rule_ids() -> Vec<&'static str> {
    CATALOG.iter().map(|d| d.id).collect()
}

/// Renders one catalog entry as the `--explain` output.
pub fn render(doc: &RuleDoc) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} ({} rule)\n\n", doc.id, doc.family));
    out.push_str(&format!("WHY\n  {}\n\n", wrap(doc.rationale)));
    out.push_str("EXAMPLE VIOLATION\n");
    for line in doc.example.lines() {
        out.push_str(&format!("  {line}\n"));
    }
    out.push_str(&format!("\nFIX\n  {}\n", wrap(doc.fix)));
    out
}

/// Re-wraps catalog prose (which carries source-indentation runs) into
/// single-spaced text indented to match the section header.
fn wrap(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_emitted_rule_id() {
        let emitted = [
            "safety-comment",
            "unsafe-impl",
            "raw-ptr-field",
            "cas-ordering",
            "static-mut",
            "layering",
            "phase-purity",
            "timing-discipline",
            "panic-discipline",
            crate::flow::RULE_CAPTURE,
            crate::flow::RULE_CANCEL,
            crate::flow::RULE_ORDERING,
            crate::flow::RULE_ALLOC,
            crate::locking::RULE_LOCK_CYCLE,
            crate::locking::RULE_BLOCKING,
            crate::locking::RULE_CV_LOOP,
            crate::locking::RULE_GUARD_SPAN,
        ];
        for id in emitted {
            assert!(lookup(id).is_some(), "rule `{id}` has no --explain entry");
        }
        assert_eq!(CATALOG.len(), emitted.len(), "catalog has undocumented extras");
    }

    #[test]
    fn ids_are_unique_and_render_is_complete() {
        let ids = rule_ids();
        let mut deduped = ids.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), ids.len());
        for doc in CATALOG {
            let text = render(doc);
            assert!(text.contains(doc.id));
            assert!(text.contains("WHY"));
            assert!(text.contains("EXAMPLE VIOLATION"));
            assert!(text.contains("FIX"));
        }
    }

    #[test]
    fn unknown_ids_miss() {
        assert!(lookup("no-such-rule").is_none());
    }
}
