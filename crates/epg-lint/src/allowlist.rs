//! The audited-exception allowlist (`epg-lint.toml` at the workspace root).
//!
//! Entries are `[[allow]]` tables; every entry must carry a `reason` so the
//! audit trail lives next to the exception:
//!
//! ```toml
//! [[allow]]
//! file = "crates/epg-foo/src/bar.rs"   # workspace-relative, `/`-separated
//! rule = "unsafe-impl"                 # rule id from the finding
//! contains = "impl Sync for Special"   # optional: substring of the line
//! reason = "audited 2026-08: …"
//!
//! [[allow]]
//! dir = "crates/epg-bench/"            # or a directory prefix scope
//! rule = "timing-discipline"
//! reason = "bench drivers are measurement code"
//! ```
//!
//! Exactly one of `file` (exact path) or `dir` (path prefix) scopes each
//! entry. The file is parsed with a purpose-built reader (the environment
//! vendors no toml crate): `[[allow]]` section headers, `key = "value"`
//! pairs, and `#` comments — exactly the subset the format above uses.
//!
//! Entries that silence nothing are *stale*: [`stale`] reports them after a
//! run, and `--strict` (default in CI) turns them into a failure, so the
//! allowlist can only shrink as debts are paid, never rot.

use crate::rules::Finding;

/// One audited exception.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Allow {
    /// Workspace-relative file the exception applies to (exact match).
    /// Empty when the entry is `dir`-scoped.
    pub file: String,
    /// Workspace-relative directory prefix the exception applies to.
    pub dir: Option<String>,
    /// Rule id it silences.
    pub rule: String,
    /// Optional substring the offending source line must contain.
    pub contains: Option<String>,
    /// Why the exception is sound (required, but only by convention —
    /// the parser reports missing reasons as errors).
    pub reason: String,
}

/// Parses allowlist text. Returns the entries or a line-numbered error.
pub fn parse(text: &str) -> Result<Vec<Allow>, String> {
    let mut entries: Vec<Allow> = Vec::new();
    let mut in_entry = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(prev) = entries.last() {
                validate(prev, idx)?;
            }
            entries.push(Allow::default());
            in_entry = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("epg-lint.toml:{}: unknown section {line}", idx + 1));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("epg-lint.toml:{}: expected key = \"value\"", idx + 1));
        };
        if !in_entry {
            return Err(format!("epg-lint.toml:{}: key outside [[allow]] entry", idx + 1));
        }
        let key = key.trim();
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!("epg-lint.toml:{}: value must be double-quoted", idx + 1));
        };
        let entry = entries.last_mut().expect("in_entry implies an open entry");
        match key {
            "file" => entry.file = value.to_string(),
            "dir" => entry.dir = Some(value.to_string()),
            "rule" => entry.rule = value.to_string(),
            "contains" => entry.contains = Some(value.to_string()),
            "reason" => entry.reason = value.to_string(),
            other => {
                return Err(format!("epg-lint.toml:{}: unknown key {other}", idx + 1));
            }
        }
    }
    if let Some(prev) = entries.last() {
        validate(prev, text.lines().count())?;
    }
    Ok(entries)
}

fn validate(entry: &Allow, end_line: usize) -> Result<(), String> {
    match (&entry.file.is_empty(), &entry.dir) {
        (true, None) => {
            return Err(format!(
                "epg-lint.toml: entry before line {end_line} needs `file` or `dir`"
            ));
        }
        (false, Some(_)) => {
            return Err(format!(
                "epg-lint.toml: entry before line {end_line} has both `file` and `dir`; pick one"
            ));
        }
        _ => {}
    }
    if entry.rule.is_empty() {
        return Err(format!("epg-lint.toml: entry before line {end_line} needs a rule"));
    }
    if entry.reason.is_empty() {
        return Err(format!(
            "epg-lint.toml: entry for {}/{} has no reason; audited exceptions must say why",
            if entry.file.is_empty() { entry.dir.as_deref().unwrap_or("") } else { &entry.file },
            entry.rule
        ));
    }
    Ok(())
}

/// The index of the first entry covering `finding`, or `None`.
/// `line_text` is the offending source (or manifest) line, used for
/// `contains` matching.
pub fn match_allow(allows: &[Allow], finding: &Finding, line_text: &str) -> Option<usize> {
    let file = finding.file.replace('\\', "/");
    allows.iter().position(|a| {
        let scope_ok = if !a.file.is_empty() {
            a.file == file
        } else {
            a.dir.as_deref().is_some_and(|d| file.starts_with(d))
        };
        scope_ok
            && a.rule == finding.rule
            && a.contains.as_deref().is_none_or(|needle| line_text.contains(needle))
    })
}

/// The entries whose index never appeared in `used` — exceptions that no
/// longer silence anything and should be deleted.
pub fn stale(allows: &[Allow], used: &[bool]) -> Vec<Allow> {
    allows
        .iter()
        .enumerate()
        .filter(|&(i, _)| !used.get(i).copied().unwrap_or(false))
        .map(|(_, a)| a.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &'static str) -> Finding {
        Finding { file: file.into(), line: 1, rule, message: String::new() }
    }

    #[test]
    fn parses_entries_and_comments() {
        let text = "# header comment\n\n[[allow]]\nfile = \"crates/a/src/x.rs\" # trailing\nrule = \"unsafe-impl\"\nreason = \"audited\"\n\n[[allow]]\nfile = \"crates/b/src/y.rs\"\nrule = \"static-mut\"\ncontains = \"LEGACY\"\nreason = \"pre-existing\"\n";
        let allows = parse(text).unwrap();
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].file, "crates/a/src/x.rs");
        assert_eq!(allows[1].contains.as_deref(), Some("LEGACY"));
    }

    #[test]
    fn empty_file_is_empty_allowlist() {
        assert_eq!(parse("# only comments\n").unwrap(), Vec::new());
    }

    #[test]
    fn missing_reason_is_an_error() {
        let text = "[[allow]]\nfile = \"a.rs\"\nrule = \"static-mut\"\n";
        assert!(parse(text).unwrap_err().contains("reason"));
    }

    #[test]
    fn missing_scope_is_an_error() {
        let text = "[[allow]]\nrule = \"static-mut\"\nreason = \"r\"\n";
        assert!(parse(text).unwrap_err().contains("`file` or `dir`"));
    }

    #[test]
    fn file_and_dir_together_is_an_error() {
        let text = "[[allow]]\nfile = \"a.rs\"\ndir = \"crates/\"\nrule = \"x\"\nreason = \"r\"\n";
        assert!(parse(text).unwrap_err().contains("pick one"));
    }

    #[test]
    fn unknown_key_is_an_error() {
        let text = "[[allow]]\nfile = \"a.rs\"\nrule = \"x\"\nreason = \"y\"\nlines = \"3\"\n";
        assert!(parse(text).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn matching_silences_findings() {
        let allows = parse(
            "[[allow]]\nfile = \"crates/a/src/x.rs\"\nrule = \"static-mut\"\ncontains = \"AUDITED\"\nreason = \"r\"\n",
        )
        .unwrap();
        let f = finding("crates/a/src/x.rs", "static-mut");
        assert_eq!(match_allow(&allows, &f, "static mut X: u8 = 0; // AUDITED"), Some(0));
        assert_eq!(match_allow(&allows, &f, "static mut Y: u8 = 0;"), None, "contains gates");
        let other_rule = finding("crates/a/src/x.rs", "unsafe-impl");
        assert_eq!(match_allow(&allows, &other_rule, "// AUDITED"), None, "rule must match");
    }

    #[test]
    fn dir_scope_matches_by_prefix() {
        let allows = parse(
            "[[allow]]\ndir = \"crates/epg-bench/\"\nrule = \"timing-discipline\"\nreason = \"bench drivers measure\"\n",
        )
        .unwrap();
        let inside = finding("crates/epg-bench/src/bin/ablation.rs", "timing-discipline");
        let outside = finding("crates/epg-graph/src/lib.rs", "timing-discipline");
        assert_eq!(match_allow(&allows, &inside, "Instant::now()"), Some(0));
        assert_eq!(match_allow(&allows, &outside, "Instant::now()"), None);
    }

    #[test]
    fn stale_reports_unused_entries() {
        let allows = parse(
            "[[allow]]\nfile = \"a.rs\"\nrule = \"x\"\nreason = \"r\"\n\n[[allow]]\nfile = \"b.rs\"\nrule = \"y\"\nreason = \"r\"\n",
        )
        .unwrap();
        let s = stale(&allows, &[true, false]);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].file, "b.rs");
    }
}
