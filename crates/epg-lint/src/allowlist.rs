//! The audited-exception allowlist (`epg-lint.toml` at the workspace root).
//!
//! Entries are `[[allow]]` tables; every entry must carry a `reason` so the
//! audit trail lives next to the exception:
//!
//! ```toml
//! [[allow]]
//! file = "crates/epg-foo/src/bar.rs"   # workspace-relative, `/`-separated
//! rule = "unsafe-impl"                 # rule id from the finding
//! contains = "impl Sync for Special"   # optional: substring of the line
//! reason = "audited 2026-08: …"
//! ```
//!
//! The file is parsed with a purpose-built reader (the environment vendors
//! no toml crate): `[[allow]]` section headers, `key = "value"` pairs, and
//! `#` comments — exactly the subset the format above uses.

use crate::rules::Finding;
use crate::scan::Line;

/// One audited exception.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Allow {
    /// Workspace-relative file the exception applies to.
    pub file: String,
    /// Rule id it silences.
    pub rule: String,
    /// Optional substring the offending source line must contain.
    pub contains: Option<String>,
    /// Why the exception is sound (required, but only by convention —
    /// the parser reports missing reasons as errors).
    pub reason: String,
}

/// Parses allowlist text. Returns the entries or a line-numbered error.
pub fn parse(text: &str) -> Result<Vec<Allow>, String> {
    let mut entries: Vec<Allow> = Vec::new();
    let mut in_entry = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(prev) = entries.last() {
                validate(prev, idx)?;
            }
            entries.push(Allow::default());
            in_entry = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("epg-lint.toml:{}: unknown section {line}", idx + 1));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("epg-lint.toml:{}: expected key = \"value\"", idx + 1));
        };
        if !in_entry {
            return Err(format!("epg-lint.toml:{}: key outside [[allow]] entry", idx + 1));
        }
        let key = key.trim();
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!("epg-lint.toml:{}: value must be double-quoted", idx + 1));
        };
        let entry = entries.last_mut().expect("in_entry implies an open entry");
        match key {
            "file" => entry.file = value.to_string(),
            "rule" => entry.rule = value.to_string(),
            "contains" => entry.contains = Some(value.to_string()),
            "reason" => entry.reason = value.to_string(),
            other => {
                return Err(format!("epg-lint.toml:{}: unknown key {other}", idx + 1));
            }
        }
    }
    if let Some(prev) = entries.last() {
        validate(prev, text.lines().count())?;
    }
    Ok(entries)
}

fn validate(entry: &Allow, end_line: usize) -> Result<(), String> {
    if entry.file.is_empty() || entry.rule.is_empty() {
        return Err(format!("epg-lint.toml: entry before line {end_line} needs file and rule"));
    }
    if entry.reason.is_empty() {
        return Err(format!(
            "epg-lint.toml: entry for {}/{} has no reason; audited exceptions must say why",
            entry.file, entry.rule
        ));
    }
    Ok(())
}

/// Whether `finding` (raised against `lines`) is covered by an entry.
pub fn is_allowed(allows: &[Allow], finding: &Finding, lines: &[Line]) -> bool {
    allows.iter().any(|a| {
        if a.file != finding.file.replace('\\', "/") || a.rule != finding.rule {
            return false;
        }
        match &a.contains {
            None => true,
            Some(needle) => lines
                .get(finding.line - 1)
                .is_some_and(|l| format!("{}{}", l.code, l.comment).contains(needle)),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    #[test]
    fn parses_entries_and_comments() {
        let text = "# header comment\n\n[[allow]]\nfile = \"crates/a/src/x.rs\" # trailing\nrule = \"unsafe-impl\"\nreason = \"audited\"\n\n[[allow]]\nfile = \"crates/b/src/y.rs\"\nrule = \"static-mut\"\ncontains = \"LEGACY\"\nreason = \"pre-existing\"\n";
        let allows = parse(text).unwrap();
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].file, "crates/a/src/x.rs");
        assert_eq!(allows[1].contains.as_deref(), Some("LEGACY"));
    }

    #[test]
    fn empty_file_is_empty_allowlist() {
        assert_eq!(parse("# only comments\n").unwrap(), Vec::new());
    }

    #[test]
    fn missing_reason_is_an_error() {
        let text = "[[allow]]\nfile = \"a.rs\"\nrule = \"static-mut\"\n";
        assert!(parse(text).unwrap_err().contains("reason"));
    }

    #[test]
    fn unknown_key_is_an_error() {
        let text = "[[allow]]\nfile = \"a.rs\"\nrule = \"x\"\nreason = \"y\"\nlines = \"3\"\n";
        assert!(parse(text).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn matching_silences_findings() {
        let allows = parse(
            "[[allow]]\nfile = \"crates/a/src/x.rs\"\nrule = \"static-mut\"\ncontains = \"AUDITED\"\nreason = \"r\"\n",
        )
        .unwrap();
        let lines = scan("static mut X: u8 = 0; // AUDITED\nstatic mut Y: u8 = 0;\n");
        let f1 = Finding {
            file: "crates/a/src/x.rs".into(),
            line: 1,
            rule: "static-mut",
            message: String::new(),
        };
        let f2 = Finding { line: 2, ..f1.clone() };
        let f3 = Finding { rule: "unsafe-impl", ..f1.clone() };
        assert!(is_allowed(&allows, &f1, &lines));
        assert!(!is_allowed(&allows, &f2, &lines), "contains must gate the match");
        assert!(!is_allowed(&allows, &f3, &lines), "rule must match");
    }
}
