//! Machine-readable findings (`--json`, schema `epg-lint/v1`) and the
//! committed-baseline mode (`--baseline <path>`).
//!
//! The JSON is hand-rolled in the same style as the harness's
//! `ingestbench` report — the workspace vendors no serde. The baseline
//! file is deliberately *not* JSON: it is the human output, one
//! `file:line: [rule] message` finding per line, so `epg lint > lint.baseline`
//! seeds it and `git diff` reviews it. A baseline entry matches a finding
//! on `(file, line, rule)`; when lines shift, regenerate the baseline (the
//! stale entries are reported, and `--strict` turns them into errors, so
//! a baseline can only shrink silently, never rot).

use crate::allowlist::Allow;
use crate::rules::Finding;
use std::fmt::Write as _;

/// Schema identifier embedded in every JSON report.
pub const SCHEMA: &str = "epg-lint/v1";

/// One baseline entry: a finding grandfathered during incremental
/// adoption of a new rule family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative file of the baselined finding.
    pub file: String,
    /// 1-based line of the baselined finding.
    pub line: usize,
    /// Rule id of the baselined finding.
    pub rule: String,
}

impl std::fmt::Display for BaselineEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}]", self.file, self.line, self.rule)
    }
}

/// Parses a baseline file (the human finding format, `#` comments and
/// blank lines ignored).
///
/// # Errors
/// Returns a line-numbered message for lines that do not parse as
/// `file:line: [rule] …` — a corrupt baseline must fail the run rather
/// than silently baseline nothing.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = || format!("baseline:{}: expected `file:line: [rule] …`", idx + 1);
        let open = line.find('[').ok_or_else(err)?;
        let close = line[open..].find(']').ok_or_else(err)? + open;
        let rule = line[open + 1..close].to_string();
        let head = line[..open].trim().trim_end_matches(':');
        let (file, lineno) = head.rsplit_once(':').ok_or_else(err)?;
        let lineno: usize = lineno.trim().parse().map_err(|_| err())?;
        if file.is_empty() || rule.is_empty() {
            return Err(err());
        }
        out.push(BaselineEntry { file: file.to_string(), line: lineno, rule });
    }
    Ok(out)
}

/// Splits `findings` into those not covered by the baseline (still
/// reported) and returns the baseline entries that matched nothing
/// (stale — the debt was paid, so the entry must go).
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &[BaselineEntry],
) -> (Vec<Finding>, Vec<BaselineEntry>) {
    let mut used = vec![false; baseline.len()];
    let kept: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            let hit = baseline
                .iter()
                .position(|b| b.file == f.file && b.line == f.line && b.rule == f.rule);
            match hit {
                Some(i) => {
                    used[i] = true;
                    false
                }
                None => true,
            }
        })
        .collect();
    let stale = baseline.iter().zip(&used).filter(|&(_, &u)| !u).map(|(b, _)| b.clone()).collect();
    (kept, stale)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings plus staleness diagnostics as `epg-lint/v1` JSON.
pub fn to_json(
    findings: &[Finding],
    stale_allows: &[Allow],
    stale_baseline: &[BaselineEntry],
) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "{{");
    let _ = writeln!(o, "  \"schema\": \"{}\",", json_escape(SCHEMA));
    let _ = writeln!(o, "  \"count\": {},", findings.len());
    let _ = writeln!(o, "  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let _ = writeln!(
            o,
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}",
            json_escape(&f.file),
            f.line,
            json_escape(f.rule),
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        );
    }
    let _ = writeln!(o, "  ],");
    let _ = writeln!(o, "  \"stale_allowlist\": [");
    for (i, a) in stale_allows.iter().enumerate() {
        let scope = match (&a.file.is_empty(), &a.dir) {
            (false, _) => format!("\"file\": \"{}\"", json_escape(&a.file)),
            (true, Some(d)) => format!("\"dir\": \"{}\"", json_escape(d)),
            (true, None) => "\"file\": \"\"".to_string(),
        };
        let _ = writeln!(
            o,
            "    {{{scope}, \"rule\": \"{}\", \"reason\": \"{}\"}}{}",
            json_escape(&a.rule),
            json_escape(&a.reason),
            if i + 1 < stale_allows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(o, "  ],");
    let _ = writeln!(o, "  \"stale_baseline\": [");
    for (i, b) in stale_baseline.iter().enumerate() {
        let _ = writeln!(
            o,
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\"}}{}",
            json_escape(&b.file),
            b.line,
            json_escape(&b.rule),
            if i + 1 < stale_baseline.len() { "," } else { "" }
        );
    }
    let _ = writeln!(o, "  ]");
    let _ = writeln!(o, "}}");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: usize, rule: &'static str) -> Finding {
        Finding { file: file.into(), line, rule, message: format!("msg for {rule}") }
    }

    #[test]
    fn baseline_round_trips_through_human_output() {
        let f = finding("crates/a/src/x.rs", 12, "phase-purity");
        let text = format!("# seeded\n\n{f}\n");
        let base = parse_baseline(&text).unwrap();
        assert_eq!(
            base,
            vec![BaselineEntry {
                file: "crates/a/src/x.rs".into(),
                line: 12,
                rule: "phase-purity".into()
            }]
        );
        let (kept, stale) = apply_baseline(vec![f], &base);
        assert!(kept.is_empty());
        assert!(stale.is_empty());
    }

    #[test]
    fn unmatched_baseline_entries_are_stale() {
        let base = parse_baseline("crates/a/src/x.rs:9: [layering] old debt\n").unwrap();
        let (kept, stale) =
            apply_baseline(vec![finding("crates/b/src/y.rs", 3, "layering")], &base);
        assert_eq!(kept.len(), 1);
        assert_eq!(stale, base);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse_baseline("not a finding line\n").unwrap_err().contains("baseline:1"));
        assert!(parse_baseline("file.rs:xx: [rule] m\n").is_err());
    }

    #[test]
    fn json_shape_and_escaping() {
        let f = finding("crates/a/src/\"x\".rs", 3, "layering");
        let json = to_json(&[f], &[], &[]);
        assert!(json.contains("\"schema\": \"epg-lint/v1\""));
        assert!(json.contains("\"count\": 1,"));
        assert!(json.contains("\\\"x\\\".rs"));
        assert!(json.contains("\"stale_allowlist\": ["));
        assert!(json.contains("\"stale_baseline\": ["));
    }

    #[test]
    fn empty_report_is_valid_and_stable() {
        let json = to_json(&[], &[], &[]);
        assert!(json.contains("\"count\": 0,"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
