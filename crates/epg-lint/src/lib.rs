//! Workspace concurrency-safety lint.
//!
//! A purpose-built analysis pass over every `.rs` file in the workspace,
//! enforcing the safety policy documented in DESIGN.md ("Safety & static
//! analysis"): SAFETY comments on `unsafe`, `unsafe impl Send/Sync` and
//! raw-pointer struct fields contained to `epg-parallel`, compare-exchange
//! failure orderings no stronger than their success orderings, and no
//! `static mut`. Runs as a binary (`cargo run -p epg-lint`, nonzero exit on
//! findings) and as a tier-1 test (`tests/workspace_clean.rs`), so policy
//! regressions fail `cargo test` the same as any other bug.
//!
//! Audited exceptions live in `epg-lint.toml` at the workspace root — see
//! [`allowlist`] for the format.

#![warn(missing_docs)]

pub mod allowlist;
pub mod rules;
pub mod scan;

pub use allowlist::Allow;
pub use rules::Finding;

use std::path::{Path, PathBuf};

/// The workspace root, located relative to this crate's manifest.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("epg-lint lives two levels below the workspace root")
        .to_path_buf()
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures"];

/// Collects every `.rs` file under `root`, workspace-relative, sorted.
pub fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Lints every `.rs` file under `root`, applying `root/epg-lint.toml` when
/// present. Returns surviving findings sorted by file and line.
///
/// # Errors
/// Returns a message when the allowlist is present but malformed — a broken
/// allowlist must fail the run rather than silently allow everything (or
/// nothing).
pub fn lint_tree(root: &Path) -> Result<Vec<Finding>, String> {
    let allows = match std::fs::read_to_string(root.join("epg-lint.toml")) {
        Ok(text) => allowlist::parse(&text)?,
        Err(_) => Vec::new(),
    };
    let mut findings = Vec::new();
    for path in rust_files(root) {
        let Ok(src) = std::fs::read_to_string(&path) else { continue };
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let lines = scan::scan(&src);
        for finding in rules::check_file(&rel, &lines) {
            if !allowlist::is_allowed(&allows, &finding, &lines) {
                findings.push(finding);
            }
        }
    }
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(findings)
}
