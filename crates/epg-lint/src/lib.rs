//! Workspace static analysis.
//!
//! A purpose-built analysis pass over the whole workspace — no `syn`, no
//! external parsers — in two tiers:
//!
//! * **Line rules** ([`rules`]) over every `.rs` file: SAFETY comments on
//!   `unsafe`, `unsafe impl Send/Sync` and raw-pointer struct fields
//!   contained to `epg-parallel`, compare-exchange failure orderings no
//!   stronger than their success orderings, and no `static mut`.
//! * **Architectural rules** over a workspace model ([`model`]): crate-DAG
//!   `layering` ([`arch`]), `phase-purity` and `timing-discipline`
//!   ([`phases`]), `panic-discipline` ([`panics`]), the `concurrency`
//!   dataflow family ([`flow`]) — `shared-mutable-capture`,
//!   `cancellation-coverage`, `atomic-ordering`, `hot-loop-alloc` — and
//!   the `locking` family ([`locking`]) — `lock-order-cycle`,
//!   `blocking-while-locked`, `condvar-wait-loop`, `guard-across-span` —
//!   over an intra-crate call graph ([`callgraph`]) that also upgrades
//!   the phase/timing/panic/alloc families to **transitive** reachability
//!   from engine loops and worker closures, with findings printed as call
//!   chains. These enforce the measurement-fairness invariants of
//!   DESIGN.md §10–§11 and the serving-path lock discipline of §15:
//!   engines are interchangeable behind `epg-engine-api`, file I/O stays
//!   in the read phase, the harness owns the clock, engine hot paths fail
//!   through the supervised `TrialOutcome` path, timed parallel regions
//!   neither race on captured state nor allocate, and no lock guard pins
//!   a blocking operation or a wake boundary.
//!
//! Runs as a binary (`cargo run -p epg-lint`, nonzero exit on findings),
//! as `epg lint` from the harness, and as a tier-1 test
//! (`tests/workspace_clean.rs`), so policy regressions fail `cargo test`
//! the same as any other bug.
//!
//! Audited exceptions live in `epg-lint.toml` at the workspace root — see
//! [`allowlist`] for the format and staleness rules. Grandfathered
//! findings can be carried in a baseline file — see [`output`].

#![warn(missing_docs)]

pub mod allowlist;
pub mod arch;
pub mod callgraph;
pub mod explain;
pub mod flow;
pub mod locking;
pub mod model;
pub mod output;
pub mod panics;
pub mod phases;
pub mod rules;
pub mod scan;

pub use allowlist::Allow;
pub use output::BaselineEntry;
pub use rules::Finding;

use std::path::{Path, PathBuf};

/// The workspace root, located relative to this crate's manifest.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("epg-lint lives two levels below the workspace root")
        .to_path_buf()
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures"];

/// Collects every `.rs` file under `root`, workspace-relative, sorted.
pub fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// The outcome of a full workspace lint, before any baseline is applied.
#[derive(Debug)]
pub struct LintReport {
    /// Findings surviving the allowlist, sorted by file/line/rule, one
    /// per `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Allowlist entries that silenced nothing this run.
    pub stale_allows: Vec<Allow>,
}

/// Lints every `.rs` file under `root` with the line rules only, applying
/// `root/epg-lint.toml` when present. Returns surviving findings sorted by
/// file and line. The fixture tests use this entry point; the binary and
/// `epg lint` run [`lint_workspace`].
///
/// # Errors
/// Returns a message when the allowlist is present but malformed — a broken
/// allowlist must fail the run rather than silently allow everything (or
/// nothing).
pub fn lint_tree(root: &Path) -> Result<Vec<Finding>, String> {
    let allows = read_allowlist(root)?;
    let mut findings = Vec::new();
    for path in rust_files(root) {
        let Ok(src) = std::fs::read_to_string(&path) else { continue };
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let lines = scan::scan(&src);
        for finding in rules::check_file(&rel, &lines) {
            if allowlist::match_allow(&allows, &finding, &line_text(&lines, finding.line)).is_none()
            {
                findings.push(finding);
            }
        }
    }
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(findings)
}

/// Runs the full analysis — line rules plus the four architectural rule
/// families over the workspace model — applying `root/epg-lint.toml` with
/// per-entry usage tracking.
///
/// # Errors
/// Returns a message when the allowlist is present but malformed.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let allows = read_allowlist(root)?;
    let mut raw: Vec<(Finding, String)> = Vec::new();

    // Tier 1: line rules over every `.rs` in the tree.
    for path in rust_files(root) {
        let Ok(src) = std::fs::read_to_string(&path) else { continue };
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let lines = scan::scan(&src);
        for finding in rules::check_file(&rel, &lines) {
            let text = line_text(&lines, finding.line);
            raw.push((finding, text));
        }
    }

    // Tier 2: architectural rules over the workspace model.
    let ws = model::Workspace::load(root);
    let mut arch_findings = Vec::new();
    arch::check(&ws, &mut arch_findings);
    phases::check(&ws, &mut arch_findings);
    panics::check(&ws, &mut arch_findings);
    flow::check(&ws, &mut arch_findings);
    locking::check(&ws, &mut arch_findings);
    callgraph::check_transitive(&ws, &mut arch_findings);
    for finding in arch_findings {
        let text = model_line_text(&ws, &finding);
        raw.push((finding, text));
    }

    // One finding per (file, line, rule): several tokens on one line
    // collapse to the first message.
    raw.sort_by(|a, b| {
        a.0.file.cmp(&b.0.file).then(a.0.line.cmp(&b.0.line)).then(a.0.rule.cmp(b.0.rule))
    });
    raw.dedup_by(|a, b| a.0.file == b.0.file && a.0.line == b.0.line && a.0.rule == b.0.rule);

    let mut used = vec![false; allows.len()];
    let mut findings = Vec::new();
    for (finding, text) in raw {
        match allowlist::match_allow(&allows, &finding, &text) {
            Some(i) => used[i] = true,
            None => findings.push(finding),
        }
    }
    Ok(LintReport { findings, stale_allows: allowlist::stale(&allows, &used) })
}

fn read_allowlist(root: &Path) -> Result<Vec<Allow>, String> {
    match std::fs::read_to_string(root.join("epg-lint.toml")) {
        Ok(text) => allowlist::parse(&text),
        Err(_) => Ok(Vec::new()),
    }
}

fn line_text(lines: &[scan::Line], line: usize) -> String {
    lines.get(line - 1).map(|l| format!("{}{}", l.code, l.comment)).unwrap_or_default()
}

/// The raw text of the line a model-tier finding points at — a manifest
/// line for declared-DAG findings, a source line otherwise.
fn model_line_text(ws: &model::Workspace, f: &Finding) -> String {
    for c in &ws.crates {
        if c.manifest_path == f.file {
            return c.manifest_lines.get(f.line - 1).cloned().unwrap_or_default();
        }
        for file in &c.files {
            if file.path == f.file {
                return line_text(&file.lines, f.line);
            }
        }
    }
    String::new()
}

/// Options shared by the `epg-lint` binary and the `epg lint` subcommand.
#[derive(Debug, Default)]
pub struct LintOptions {
    /// Emit the `epg-lint/v1` JSON report instead of human lines.
    pub json: bool,
    /// Fail (exit 1) on stale allowlist/baseline entries even when no
    /// findings survive — CI runs with this on so exceptions cannot rot.
    pub strict: bool,
    /// Optional committed baseline of grandfathered findings (human
    /// finding lines, matched on file/line/rule).
    pub baseline: Option<PathBuf>,
}

/// Runs the full lint over `root` and prints the report to stdout.
///
/// Returns the process exit code: `0` clean, `1` findings survive, `2`
/// configuration errors (bad root, malformed allowlist or baseline), `3`
/// no findings but stale allowlist/baseline entries exist under
/// [`LintOptions::strict`]. The distinct stale code lets CI and scripts
/// tell "the code regressed" from "an exception rotted" without parsing
/// output.
pub fn run_lint(root: &Path, opts: &LintOptions) -> i32 {
    if !root.is_dir() {
        eprintln!("epg-lint: {}: not a directory", root.display());
        return 2;
    }
    let report = match lint_workspace(root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("epg-lint: {err}");
            return 2;
        }
    };
    let baseline = match &opts.baseline {
        None => Vec::new(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("epg-lint: {}: {err}", path.display());
                    return 2;
                }
            };
            match output::parse_baseline(&text) {
                Ok(baseline) => baseline,
                Err(err) => {
                    eprintln!("epg-lint: {err}");
                    return 2;
                }
            }
        }
    };
    let (findings, stale_baseline) = output::apply_baseline(report.findings, &baseline);
    let stale_allows = report.stale_allows;

    if opts.json {
        print!("{}", output::to_json(&findings, &stale_allows, &stale_baseline));
    } else {
        for f in &findings {
            println!("{f}");
        }
        for a in &stale_allows {
            let scope =
                if a.file.is_empty() { a.dir.clone().unwrap_or_default() } else { a.file.clone() };
            println!(
                "epg-lint.toml: stale [[allow]] entry ({scope}, rule {}) silences nothing; \
                 delete it",
                a.rule
            );
        }
        for b in &stale_baseline {
            println!("baseline: stale entry `{b}` matches nothing; regenerate the baseline");
        }
        if findings.is_empty() && stale_allows.is_empty() && stale_baseline.is_empty() {
            println!("epg-lint: clean ({})", root.display());
        } else if !findings.is_empty() {
            eprintln!("epg-lint: {} finding(s)", findings.len());
        }
    }

    let strict_stale = opts.strict && (!stale_allows.is_empty() || !stale_baseline.is_empty());
    if !findings.is_empty() {
        1
    } else if strict_stale {
        3
    } else {
        0
    }
}
