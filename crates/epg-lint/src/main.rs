//! `epg-lint` entry point: runs the full workspace analysis (line rules
//! plus the layering / phase-purity / timing-discipline / panic-discipline
//! families), prints findings `file:line: [rule] message` (or `--json`),
//! and exits nonzero when any survive the allowlist.
//!
//! Usage: `epg-lint [root] [--json] [--strict] [--baseline <path>]`

use epg_lint::LintOptions;
use std::path::PathBuf;

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut opts = LintOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            "--baseline" => match args.next() {
                Some(path) => opts.baseline = Some(PathBuf::from(path)),
                None => {
                    eprintln!("epg-lint: --baseline needs a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: epg-lint [root] [--json] [--strict] [--baseline <path>]");
                return;
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("epg-lint: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let root = root.unwrap_or_else(epg_lint::workspace_root);
    std::process::exit(epg_lint::run_lint(&root, &opts));
}
