//! `epg-lint` entry point: lints the workspace (or an explicit root given
//! as the first argument), prints findings `file:line: [rule] message`, and
//! exits nonzero when any survive the allowlist.

use std::path::PathBuf;

fn main() {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(epg_lint::workspace_root);
    if !root.is_dir() {
        eprintln!("epg-lint: {}: not a directory", root.display());
        std::process::exit(2);
    }
    match epg_lint::lint_tree(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("epg-lint: clean ({})", root.display());
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("epg-lint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(err) => {
            eprintln!("epg-lint: {err}");
            std::process::exit(2);
        }
    }
}
