//! `epg-lint` entry point: runs the full workspace analysis (line rules
//! plus the layering / phase-purity / timing-discipline / panic-discipline
//! / concurrency families), prints findings `file:line: [rule] message`
//! (or `--json`), and exits nonzero when any survive the allowlist
//! (`1` findings, `2` config error, `3` stale exceptions under
//! `--strict`). `--explain <rule-id>` prints the rule catalog entry.
//!
//! Usage: `epg-lint [root] [--json] [--strict] [--baseline <path>]
//! [--explain <rule-id>]`

use epg_lint::LintOptions;
use std::path::PathBuf;

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut opts = LintOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--strict" => opts.strict = true,
            "--baseline" => match args.next() {
                Some(path) => opts.baseline = Some(PathBuf::from(path)),
                None => {
                    eprintln!("epg-lint: --baseline needs a path");
                    std::process::exit(2);
                }
            },
            "--explain" => match args.next() {
                Some(id) => std::process::exit(explain(&id)),
                None => {
                    eprintln!("epg-lint: --explain needs a rule id");
                    eprintln!("rules: {}", epg_lint::explain::rule_ids().join(", "));
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: epg-lint [root] [--json] [--strict] [--baseline <path>] \
                     [--explain <rule-id>]"
                );
                return;
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("epg-lint: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let root = root.unwrap_or_else(epg_lint::workspace_root);
    std::process::exit(epg_lint::run_lint(&root, &opts));
}

/// Prints one rule's catalog entry; exit `0`, or `2` on an unknown id
/// (with the full id list, so the error is also the discovery path).
fn explain(id: &str) -> i32 {
    match epg_lint::explain::lookup(id) {
        Some(doc) => {
            print!("{}", epg_lint::explain::render(doc));
            0
        }
        None => {
            eprintln!("epg-lint: unknown rule `{id}`");
            eprintln!("rules: {}", epg_lint::explain::rule_ids().join(", "));
            2
        }
    }
}
