//! The `concurrency` rule family: an intraprocedural dataflow pass over
//! the token model ([`crate::model`]).
//!
//! PR 1's `check-disjoint` shadow table and PR 3's `CancelToken` enforce
//! the parallel invariants *dynamically and by convention*; this module is
//! their static twin. It walks identifier def/use inside the two span
//! kinds the model extracts — engine **iteration loops** (the per-round
//! loop every engine reports through `rec.iteration(…)`) and **worker
//! closures** (arguments to the `epg-parallel` entry points) — and proves
//! four invariants at lint time:
//!
//! * `shared-mutable-capture` — a worker closure may mutate shared state
//!   only through an API (`DisjointWriter`, atomics, locks). A *direct*
//!   assignment (`=`, `+=`, …) whose left-hand place is rooted at a
//!   captured identifier is a data race the borrow checker cannot see
//!   through the pool's `unsafe` job pointer.
//! * `cancellation-coverage` — every iteration loop must contain a
//!   reachable `is_cancelled()` poll site, so a trial past its budget can
//!   unwind cooperatively (the paper's DNF rows depend on it).
//! * `atomic-ordering` — extends the `cas-ordering` line rule with the
//!   sites it cannot see: `SeqCst` in hot loop bodies (and anywhere in the
//!   `epg-parallel` substrate, which must audit every use), and `Relaxed`
//!   loads of cross-thread *flags* outside the audited `CancelToken` fast
//!   path.
//! * `hot-loop-alloc` — no `Vec::new`/`vec!`/`collect`/`format!`/`to_vec`
//!   and no push-growth of captured vectors inside timed loop bodies or
//!   worker closures: allocation inside the measured region skews the
//!   engine comparison (the SoK's "hidden work" fault class).
//!
//! The def/use analysis is deliberately token-level and line-local, like
//! the rest of the linter: **defs** are closure parameters, `let` pattern
//! bindings, and `for` bindings inside the span; **uses** are assignment
//! left-hand sides and grow-method receivers. Place expressions that pass
//! through a call (`*writer.get_raw(v) = x`, `frontier.lock().append(…)`)
//! are API-mediated by definition and out of scope here — the SAFETY and
//! `unsafe`-containment line rules own those. Known blind spots: `<<=` and
//! `>>=` compound assignments (lexically identical to `<=`/`>=` prefixes)
//! and multi-line place chains; both are absent from the workspace idiom.

use crate::arch::{is_engine_crate, layer_of};
use crate::model::{FileModel, Workspace};
use crate::rules::Finding;
use crate::scan::{find_word_from, has_word};

/// Stable rule id: direct mutation of captured state in a worker closure.
pub const RULE_CAPTURE: &str = "shared-mutable-capture";

/// Stable rule id: iteration loop without an `is_cancelled()` poll site.
pub const RULE_CANCEL: &str = "cancellation-coverage";

/// Stable rule id: over- or under-strong atomic orderings on hot paths.
pub const RULE_ORDERING: &str = "atomic-ordering";

/// Stable rule id: allocation inside timed loops or worker closures.
pub const RULE_ALLOC: &str = "hot-loop-alloc";

/// The audited lock-free fast path the `Relaxed`-flag check must not
/// flag: `CancelToken::is_cancelled` deliberately reads its deadline word
/// `Relaxed` (the Acquire load of the latched flag is the ordering
/// anchor; see the module docs of `epg-parallel/src/cancel.rs`).
const AUDITED_RELAXED_FILES: &[&str] = &["crates/epg-parallel/src/cancel.rs"];

/// Allocation tokens forbidden in timed spans (DESIGN.md §11).
pub(crate) const ALLOC_TOKENS: &[&str] =
    &["Vec::new()", "vec![", ".collect", "format!(", ".to_vec()"];

/// Methods that grow their receiver — flagged when the receiver is a
/// captured (non-span-local) place.
const GROWTH_TOKENS: &[&str] = &[".push(", ".extend(", ".append("];

/// Identifier fragments that mark an atomic as a cross-thread *flag*
/// (as opposed to a chunk counter, which legitimately loads `Relaxed`).
const FLAG_FRAGMENTS: &[&str] =
    &["cancel", "stop", "shutdown", "abort", "flag", "done", "active", "poison"];

/// Runs the concurrency family over every policy crate in the model.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for c in &ws.crates {
        if layer_of(&c.name).is_none() {
            continue;
        }
        let engine = is_engine_crate(&c.name);
        for f in &c.files {
            if f.test_role {
                continue;
            }
            check_capture(f, out);
            check_ordering(f, &c.name, out);
            if engine {
                check_cancellation(f, out);
                check_alloc(f, out);
            }
        }
    }
}

/// The file's engine iteration loops: loop spans containing a
/// `rec.iteration(…)` telemetry call. PR 2 wired that call into every
/// engine's per-round loop, so the token doubles as the marker for "the
/// loop the cancellation contract covers".
pub fn iteration_loops(f: &FileModel) -> Vec<(usize, usize)> {
    let marks = f.token_lines(".iteration(");
    f.loops.iter().copied().filter(|&(s, e)| marks.iter().any(|&l| s <= l && l <= e)).collect()
}

/// Timed spans of an engine file: iteration loops, loops that directly
/// invoke an `epg-parallel` entry point, and every worker-closure
/// argument span. (A loop that delegates its parallel work to a helper is
/// still covered through its `rec.iteration` marker; the helper's own
/// worker spans are covered directly.)
pub(crate) fn hot_spans(f: &FileModel) -> Vec<(usize, usize)> {
    let marks = f.token_lines(".iteration(");
    let par_lines = f.par_entry_lines();
    let within = |s: usize, e: usize, lines: &[usize]| lines.iter().any(|&l| s <= l && l <= e);
    let mut spans: Vec<(usize, usize)> = f
        .loops
        .iter()
        .copied()
        .filter(|&(s, e)| within(s, e, &marks) || within(s, e, &par_lines))
        .collect();
    spans.extend(f.par_calls.iter().copied());
    spans.sort_unstable();
    spans.dedup();
    spans
}

fn check_cancellation(f: &FileModel, out: &mut Vec<Finding>) {
    let polls = f.token_lines("is_cancelled");
    for (s, e) in iteration_loops(f) {
        if f.in_test(s) {
            continue;
        }
        if !polls.iter().any(|&l| s <= l && l <= e) {
            out.push(Finding {
                file: f.path.clone(),
                line: s,
                rule: RULE_CANCEL,
                message: "engine iteration loop reports `rec.iteration(…)` but contains no \
                          `is_cancelled()` poll site; a trial past its budget cannot unwind \
                          cooperatively — poll the token at the top of every per-round loop"
                    .to_string(),
            });
        }
    }
}

fn check_ordering(f: &FileModel, crate_name: &str, out: &mut Vec<Finding>) {
    let substrate = crate_name == "epg-parallel";
    for line in f.token_lines("SeqCst") {
        if f.in_test(line) {
            continue;
        }
        if substrate {
            out.push(Finding {
                file: f.path.clone(),
                line,
                rule: RULE_ORDERING,
                message: "`SeqCst` in the epg-parallel substrate: every sequentially consistent \
                          ordering here runs under the engines' hot paths — downgrade to \
                          acquire/release if the invariant allows it, otherwise record a \
                          reasoned epg-lint.toml entry"
                    .to_string(),
            });
        } else if f.in_loop_or_worker(line) {
            out.push(Finding {
                file: f.path.clone(),
                line,
                rule: RULE_ORDERING,
                message: "`SeqCst` inside a hot loop body or worker closure; acquire/release \
                          suffices for every handoff the engines perform (publish with Release, \
                          observe with Acquire)"
                    .to_string(),
            });
        }
    }
    if AUDITED_RELAXED_FILES.contains(&f.path.as_str()) {
        return;
    }
    for tok in [".load(Ordering::Relaxed)", ".load(Relaxed)"] {
        for line in f.token_lines(tok) {
            if f.in_test(line) {
                continue;
            }
            let code = &f.lines[line - 1].code;
            let mut from = 0;
            while let Some(pos) = code[from..].find(tok) {
                let dot = from + pos;
                from = dot + tok.len();
                let Some((chain, _)) = place_chain(code, dot) else { continue };
                let Some(name) = last_ident(chain) else { continue };
                if is_flag_name(name) {
                    out.push(Finding {
                        file: f.path.clone(),
                        line,
                        rule: RULE_ORDERING,
                        message: format!(
                            "`Relaxed` load of cross-thread flag `{name}`: a worker observing \
                             the flag must also observe the writes published before it was \
                             raised — load with Acquire (the audited CancelToken fast path is \
                             the one exception)"
                        ),
                    });
                    break; // one finding per line
                }
            }
        }
    }
}

fn check_capture(f: &FileModel, out: &mut Vec<Finding>) {
    for &(s, e) in &f.par_calls {
        if f.in_test(s) {
            continue;
        }
        let defs = defs_in_span(f, s, e);
        for line in s..=e.min(f.lines.len()) {
            let code = &f.lines[line - 1].code;
            for op in assignments(code) {
                let Some(base) = assigned_base(code, op) else { continue };
                if defs.iter().any(|d| d == base) {
                    continue;
                }
                out.push(Finding {
                    file: f.path.clone(),
                    line,
                    rule: RULE_CAPTURE,
                    message: format!(
                        "worker closure assigns directly to captured `{base}`; concurrent \
                         workers race on it — route shared writes through DisjointWriter, \
                         atomics, or a per-worker buffer merged after the region"
                    ),
                });
                break; // one finding per line
            }
        }
    }
}

fn check_alloc(f: &FileModel, out: &mut Vec<Finding>) {
    let spans = hot_spans(f);
    if spans.is_empty() {
        return;
    }
    let hot = |line: usize| spans.iter().any(|&(s, e)| s <= line && line <= e);
    let mut flagged: Vec<usize> = Vec::new();
    for tok in ALLOC_TOKENS {
        for line in f.token_lines(tok) {
            if f.in_test(line) || f.in_fn_named(line, "load_file") || !hot(line) {
                continue;
            }
            if flagged.contains(&line) {
                continue;
            }
            flagged.push(line);
            out.push(Finding {
                file: f.path.clone(),
                line,
                rule: RULE_ALLOC,
                message: format!(
                    "`{tok}` allocates inside a timed engine loop or worker closure; hoist the \
                     buffer out of the measured region (reuse scratch across iterations) or \
                     record a reasoned epg-lint.toml entry"
                ),
            });
        }
    }
    // Push-growth: a grow-method call whose receiver is a plain place
    // rooted at a captured identifier — the vector outlives the span, so
    // every iteration pays its reallocation inside the measured region.
    for &(s, e) in &spans {
        if f.in_test(s) {
            continue;
        }
        let defs = defs_in_span(f, s, e);
        for line in s..=e.min(f.lines.len()) {
            if f.in_test(line) || f.in_fn_named(line, "load_file") || flagged.contains(&line) {
                continue;
            }
            let code = &f.lines[line - 1].code;
            for tok in GROWTH_TOKENS {
                let mut from = 0;
                let mut hit = false;
                while let Some(pos) = code[from..].find(tok) {
                    let dot = from + pos;
                    from = dot + tok.len();
                    let Some((chain, has_call)) = place_chain(code, dot) else { continue };
                    if has_call {
                        continue; // `.lock().append(…)` etc.: API-mediated
                    }
                    let Some(base) = first_ident(chain) else { continue };
                    if defs.iter().any(|d| d == base) {
                        continue;
                    }
                    flagged.push(line);
                    out.push(Finding {
                        file: f.path.clone(),
                        line,
                        rule: RULE_ALLOC,
                        message: format!(
                            "push-growth of captured `{chain}` inside a timed loop or worker \
                             closure; the buffer outlives the span, so its reallocation is \
                             measured — pre-size it outside the region or collect per-worker \
                             and merge"
                        ),
                    });
                    hit = true;
                    break;
                }
                if hit {
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The line-local dataflow substrate
// ---------------------------------------------------------------------------

/// Identifiers bound inside the span: closure parameters, `let` pattern
/// bindings, and `for` bindings. Upper-cased idents (types, variants) and
/// the `mut`/`ref` keywords are never bindings.
fn defs_in_span(f: &FileModel, s: usize, e: usize) -> Vec<String> {
    let mut defs = Vec::new();
    for line in s..=e.min(f.lines.len()) {
        let code = &f.lines[line - 1].code;
        closure_params(code, &mut defs);
        let_bindings(code, &mut defs);
        for_bindings(code, &mut defs);
    }
    defs
}

/// Byte positions where an assignment operator starts (`=` of a plain
/// assignment, or the first char of `+=`/`-=`/…). Comparison (`==`,
/// `<=`, `>=`, `!=`), match arrows, and `..=` ranges are skipped; so are
/// `<<=`/`>>=` (lexically `<=`-prefixed — a documented blind spot).
fn assignments(code: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] != b'=' {
            i += 1;
            continue;
        }
        let next = b.get(i + 1).copied();
        if next == Some(b'=') || next == Some(b'>') {
            i += 2; // `==` or `=>`
            continue;
        }
        let prev = if i > 0 { b[i - 1] } else { b' ' };
        match prev {
            b'=' | b'!' | b'<' | b'>' | b'.' => {} // comparisons, `..=`
            b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^' => out.push(i - 1),
            _ => out.push(i),
        }
        i += 1;
    }
    out
}

/// The root identifier of the place assigned at operator position `op`,
/// or `None` when the statement is a `let` binding, the place passes
/// through a call (API-mediated), or no plain place precedes the `=`.
fn assigned_base(code: &str, op: usize) -> Option<&str> {
    let lhs = &code[..op];
    // Statement start: after the last `;`/`{`/`}`/match-arrow.
    let mut start = lhs.rfind([';', '{', '}']).map_or(0, |p| p + 1);
    if let Some(p) = lhs.rfind("=>") {
        start = start.max(p + 2);
    }
    let stmt = lhs[start..].trim();
    if has_word(stmt, "let") {
        return None; // a binding, already in the def set
    }
    if stmt.contains('(') {
        return None; // `*writer.get_raw(v) = …`: API-mediated
    }
    let place = stmt.trim_start_matches(['*', '&', ' ']);
    let base = first_ident(place)?;
    if base.as_bytes().first().is_some_and(u8::is_ascii_uppercase) {
        return None; // `Self::CONST`-shaped, not a runtime place
    }
    Some(base)
}

/// Extracts closure parameter bindings from one line. A `|` opens a
/// closure header iff nothing, an opener (`(`, `,`, `=`, `{`, `;`, `>`),
/// or the word `move` precedes it — which is what distinguishes it from
/// bitwise-or.
fn closure_params(code: &str, out: &mut Vec<String>) {
    let b = code.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] != b'|' {
            i += 1;
            continue;
        }
        let before = code[..i].trim_end();
        let opens = before.is_empty()
            || before.ends_with(['(', ',', '=', '{', ';', '>'])
            || before.ends_with("move");
        if !opens {
            i += 1;
            continue;
        }
        if b.get(i + 1) == Some(&b'|') {
            i += 2; // `||` — parameterless closure
            continue;
        }
        let Some(close) = code[i + 1..].find('|').map(|p| i + 1 + p) else {
            return; // header split across lines: out of the line-local model
        };
        for piece in split_top_level(&code[i + 1..close], ',') {
            let pat = piece.split(':').next().unwrap_or(piece);
            binding_idents(pat, out);
        }
        i = close + 1;
    }
}

/// Extracts `let` pattern bindings from one line (covers `if let` /
/// `while let` / `let … else` heads too).
pub(crate) fn let_bindings(code: &str, out: &mut Vec<String>) {
    let mut from = 0;
    while let Some(pos) = find_word_from(code, from, "let") {
        from = pos + 3;
        let rest = &code[pos + 3..];
        let cut = rest.find(['=', ';']).unwrap_or(rest.len());
        let pat = &rest[..cut];
        // Strip a top-level type annotation (`: Vec<u32>`); `::` paths and
        // struct-pattern fields sit at bracket depth > 0 or are `::`.
        let pat = cut_type_annotation(pat);
        binding_idents(pat, out);
    }
}

/// Extracts `for <pat> in …` bindings from one line.
fn for_bindings(code: &str, out: &mut Vec<String>) {
    let mut from = 0;
    while let Some(pos) = find_word_from(code, from, "for") {
        from = pos + 3;
        let Some(inpos) = find_word_from(code, from, "in") else { continue };
        binding_idents(&code[pos + 3..inpos], out);
    }
}

/// Truncates `pat` at the first top-level `:` that is not part of `::`.
fn cut_type_annotation(pat: &str) -> &str {
    let b = pat.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' | b'{' | b'<' => depth += 1,
            b')' | b']' | b'}' | b'>' => depth -= 1,
            b':' if depth == 0 => {
                if b.get(i + 1) == Some(&b':') {
                    i += 2;
                    continue;
                }
                return &pat[..i];
            }
            _ => {}
        }
        i += 1;
    }
    pat
}

/// Splits at top-level occurrences of `sep` (depth over `()[]{}<>`).
fn split_top_level(s: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth -= 1,
            c if c == sep && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Collects binding identifiers from a pattern fragment: lowercase- or
/// `_`-started idents except the `mut`/`ref` keywords and `_` itself.
fn binding_idents(pat: &str, out: &mut Vec<String>) {
    let b = pat.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i].is_ascii_digit() {
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1; // numeric literal (`0u64`): skip its suffix too
            }
            continue;
        }
        if !is_ident_byte(b[i]) {
            i += 1;
            continue;
        }
        let st = i;
        while i < b.len() && is_ident_byte(b[i]) {
            i += 1;
        }
        let w = &pat[st..i];
        let lower_start = w.as_bytes()[0].is_ascii_lowercase() || w.starts_with('_');
        if lower_start && w != "mut" && w != "ref" && w != "_" {
            out.push(w.to_string());
        }
    }
}

/// The place chain ending at byte `end` (exclusive): identifiers, `.`
/// separators, and balanced `[…]`/`(…)` groups, walked backwards. The
/// bool reports whether the chain passes through a call (any paren
/// group), which marks it API-mediated.
pub(crate) fn place_chain(code: &str, end: usize) -> Option<(&str, bool)> {
    let b = code.as_bytes();
    let mut i = end;
    let mut has_call = false;
    while i > 0 {
        let c = b[i - 1];
        if is_ident_byte(c) || c == b'.' {
            i -= 1;
        } else if c == b']' || c == b')' {
            let (open, close) = if c == b']' { (b'[', b']') } else { (b'(', b')') };
            if c == b')' {
                has_call = true;
            }
            let mut depth = 0i32;
            let mut j = i;
            loop {
                if j == 0 {
                    return None; // unbalanced on this line
                }
                let d = b[j - 1];
                if d == close {
                    depth += 1;
                } else if d == open {
                    depth -= 1;
                    if depth == 0 {
                        j -= 1;
                        break;
                    }
                }
                j -= 1;
            }
            i = j;
        } else {
            break;
        }
    }
    if i == end {
        None
    } else {
        Some((&code[i..end], has_call))
    }
}

pub(crate) fn first_ident(s: &str) -> Option<&str> {
    let b = s.as_bytes();
    let st = b.iter().position(|&c| is_ident_byte(c))?;
    if b[st].is_ascii_digit() {
        return None;
    }
    let en = (st..b.len()).find(|&i| !is_ident_byte(b[i])).unwrap_or(b.len());
    Some(&s[st..en])
}

pub(crate) fn last_ident(s: &str) -> Option<&str> {
    let b = s.as_bytes();
    let en = b.iter().rposition(|&c| is_ident_byte(c))? + 1;
    let st = (0..en).rev().find(|&i| !is_ident_byte(b[i])).map_or(0, |i| i + 1);
    if b[st].is_ascii_digit() {
        return None;
    }
    Some(&s[st..en])
}

fn is_flag_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    FLAG_FRAGMENTS.iter().any(|frag| lower.contains(frag))
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CrateModel;
    use crate::scan::scan;

    fn krate(name: &str, file: &str, src: &str) -> CrateModel {
        CrateModel {
            name: name.to_string(),
            dir: format!("crates/{name}"),
            manifest_path: format!("crates/{name}/Cargo.toml"),
            manifest_lines: Vec::new(),
            deps: Vec::new(),
            dev_deps: Vec::new(),
            files: vec![FileModel::build(format!("crates/{name}/src/{file}"), scan(src), false)],
        }
    }

    fn run(c: CrateModel) -> Vec<Finding> {
        let ws = Workspace { crates: vec![c] };
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // --- cancellation-coverage -------------------------------------------

    #[test]
    fn iteration_loop_without_poll_is_flagged() {
        let src = "fn run(rec: &mut R) {\n    let mut n = 3;\n    while n > 0 {\n        n -= 1;\n        rec.iteration(n as u64);\n    }\n}\n";
        let f = run(krate("epg-engine-gap", "pr.rs", src));
        assert_eq!(rules_of(&f), [RULE_CANCEL]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn iteration_loop_with_poll_passes() {
        let src = "fn run(pool: &P, rec: &mut R) {\n    let mut n = 3;\n    while n > 0 {\n        if pool.is_cancelled() {\n            break;\n        }\n        n -= 1;\n        rec.iteration(n as u64);\n    }\n}\n";
        assert!(run(krate("epg-engine-gap", "pr.rs", src)).is_empty());
    }

    #[test]
    fn loops_without_iteration_marker_are_not_checked() {
        let src = "fn setup(xs: &[u32]) -> u32 {\n    let mut s = 0;\n    for x in xs {\n        s += x;\n    }\n    s\n}\n";
        assert!(run(krate("epg-engine-gap", "pr.rs", src)).is_empty());
    }

    #[test]
    fn non_engine_crates_are_out_of_cancellation_scope() {
        let src = "fn drain(rec: &mut R) {\n    loop {\n        rec.iteration(0);\n        break;\n    }\n}\n";
        assert!(run(krate("epg-harness", "runner.rs", src)).is_empty());
    }

    // --- shared-mutable-capture ------------------------------------------

    #[test]
    fn assignment_to_captured_place_is_flagged() {
        let src = "fn kernel(pool: &P, out: &mut [u32]) {\n    pool.parallel_for(out.len(), s, |v| {\n        out[v] = 1;\n    });\n}\n";
        let f = run(krate("epg-engine-gap", "bfs.rs", src));
        assert_eq!(rules_of(&f), [RULE_CAPTURE]);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("`out`"), "{}", f[0].message);
    }

    #[test]
    fn compound_assignment_to_captured_is_flagged() {
        let src = "fn kernel(pool: &P) {\n    let mut total = 0u64;\n    pool.parallel_for(8, s, |v| {\n        total += v as u64;\n    });\n}\n";
        let f = run(krate("epg-engine-gap", "bfs.rs", src));
        assert_eq!(rules_of(&f), [RULE_CAPTURE]);
        assert!(f[0].message.contains("`total`"), "{}", f[0].message);
    }

    #[test]
    fn assignment_to_closure_local_passes() {
        let src = "fn kernel(pool: &P) {\n    pool.parallel_for(8, s, |v| {\n        let mut acc = 0;\n        acc = v + acc;\n        drop(acc);\n    });\n}\n";
        assert!(run(krate("epg-engine-gap", "bfs.rs", src)).is_empty());
    }

    #[test]
    fn writer_mediated_assignment_passes() {
        let src = "fn kernel(pool: &P, w: &W) {\n    pool.parallel_for(8, s, |v| {\n        // SAFETY: disjoint by construction.\n        unsafe { *w.get_raw(v) = 1 };\n    });\n}\n";
        assert!(run(krate("epg-engine-gap", "bfs.rs", src)).is_empty());
    }

    #[test]
    fn closure_param_and_for_bindings_are_defs() {
        let src = "fn kernel(pool: &P) {\n    pool.parallel_for_ranges(8, s, |w, lo, hi| {\n        for i in lo..hi {\n            let mut x = i;\n            x += w;\n            drop(x);\n        }\n    });\n}\n";
        assert!(run(krate("epg-engine-gap", "bfs.rs", src)).is_empty());
    }

    #[test]
    fn comparisons_and_match_arrows_are_not_assignments() {
        let src = "fn kernel(pool: &P, d: &[u32]) {\n    pool.parallel_for(8, s, |v| {\n        if d[v] == 0 || d[v] <= 1 {\n            match v {\n                0 => {}\n                _ => {}\n            }\n        }\n    });\n}\n";
        assert!(run(krate("epg-engine-gap", "bfs.rs", src)).is_empty());
    }

    // --- atomic-ordering --------------------------------------------------

    #[test]
    fn seqcst_in_engine_hot_loop_is_flagged() {
        let src = "fn kernel(a: &A) {\n    loop {\n        a.store(1, Ordering::SeqCst);\n        break;\n    }\n}\n";
        let f = run(krate("epg-engine-gap", "bfs.rs", src));
        assert_eq!(rules_of(&f), [RULE_ORDERING]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn seqcst_outside_hot_paths_passes_in_engines() {
        let src = "fn init(a: &A) {\n    a.store(0, Ordering::SeqCst);\n}\n";
        assert!(run(krate("epg-engine-gap", "bfs.rs", src)).is_empty());
    }

    #[test]
    fn seqcst_anywhere_in_parallel_substrate_is_flagged() {
        let src = "fn order(o: Ordering) -> Ordering {\n    match o {\n        Ordering::SeqCst => Ordering::SeqCst,\n        other => other,\n    }\n}\n";
        let f = run(krate("epg-parallel", "atomics.rs", src));
        assert_eq!(rules_of(&f), [RULE_ORDERING]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn relaxed_flag_load_is_flagged() {
        let src =
            "fn poll(stop_flag: &AtomicBool) -> bool {\n    stop_flag.load(Ordering::Relaxed)\n}\n";
        let f = run(krate("epg-parallel", "pool.rs", src));
        assert_eq!(rules_of(&f), [RULE_ORDERING]);
        assert!(f[0].message.contains("`stop_flag`"), "{}", f[0].message);
    }

    #[test]
    fn relaxed_counter_load_passes() {
        let src = "fn claim(next: &AtomicUsize) -> usize {\n    next.load(Ordering::Relaxed)\n}\n";
        assert!(run(krate("epg-parallel", "pool.rs", src)).is_empty());
    }

    #[test]
    fn audited_cancel_fast_path_is_exempt() {
        let src =
            "fn is_cancelled(c: &Inner) -> bool {\n    c.cancelled.load(Ordering::Relaxed)\n}\n";
        assert!(run(krate("epg-parallel", "cancel.rs", src)).is_empty());
    }

    #[test]
    fn relaxed_flag_loads_in_tests_are_exempt() {
        let src = "fn real() {}\n\n#[cfg(test)]\nmod tests {\n    fn t(done: &AtomicBool) -> bool {\n        done.load(Ordering::Relaxed)\n    }\n}\n";
        assert!(run(krate("epg-graph", "lib.rs", src)).is_empty());
    }

    // --- hot-loop-alloc ---------------------------------------------------

    #[test]
    fn alloc_in_worker_closure_is_flagged() {
        let src = "fn kernel(pool: &P) {\n    pool.parallel_for(8, s, |v| {\n        let mut local: Vec<u32> = Vec::new();\n        local.push(v);\n    });\n}\n";
        let f = run(krate("epg-engine-gap", "bfs.rs", src));
        assert_eq!(rules_of(&f), [RULE_ALLOC]);
        assert_eq!(f[0].line, 3, "{f:?}");
    }

    #[test]
    fn collect_in_iteration_loop_is_flagged() {
        let src = "fn run(pool: &P, rec: &mut R, n: usize) {\n    while n > 0 {\n        if pool.is_cancelled() {\n            break;\n        }\n        let prev: Vec<u32> = (0..n).collect();\n        drop(prev);\n        rec.iteration(0);\n    }\n}\n";
        let f = run(krate("epg-engine-gap", "pr.rs", src));
        assert_eq!(rules_of(&f), [RULE_ALLOC]);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn alloc_in_untimed_loops_passes() {
        let src = "fn build(xs: &[u32]) -> Vec<Vec<u32>> {\n    let mut out = Vec::new();\n    for &x in xs {\n        out.push(vec![x]);\n    }\n    out\n}\n";
        assert!(run(krate("epg-engine-gap", "builder.rs", src)).is_empty());
    }

    #[test]
    fn push_to_captured_vector_is_flagged() {
        let src = "fn run(pool: &P, rec: &mut R, levels: &mut Vec<u32>) {\n    loop {\n        if pool.is_cancelled() {\n            break;\n        }\n        levels.push(1);\n        rec.iteration(0);\n    }\n}\n";
        let f = run(krate("epg-engine-gap", "bc.rs", src));
        assert_eq!(rules_of(&f), [RULE_ALLOC]);
        assert_eq!(f[0].line, 6);
        assert!(f[0].message.contains("push-growth"), "{}", f[0].message);
    }

    #[test]
    fn push_to_span_local_vector_passes_growth_but_not_alloc() {
        // The `Vec::new()` allocation is flagged; the push to the local it
        // creates is not a *second* finding.
        let src = "fn run(pool: &P, rec: &mut R) {\n    loop {\n        if pool.is_cancelled() {\n            break;\n        }\n        let mut next = Vec::new();\n        next.push(1);\n        drop(next);\n        rec.iteration(0);\n    }\n}\n";
        let f = run(krate("epg-engine-gap", "bfs.rs", src));
        assert_eq!(rules_of(&f), [RULE_ALLOC]);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn lock_mediated_append_passes() {
        let src = "fn kernel(pool: &P, found: &Mutex<Vec<u32>>) {\n    pool.parallel_for(8, s, |v| {\n        found.lock().append(&mut Vec::from([v]));\n    });\n}\n";
        assert!(run(krate("epg-engine-gap", "bfs.rs", src)).is_empty());
    }

    #[test]
    fn load_file_helpers_are_exempt_from_alloc() {
        let src = "impl E {\n    fn load_file(&mut self, pool: &P) {\n        pool.parallel_for(8, s, |v| {\n            let chunk: Vec<u32> = Vec::new();\n            drop((chunk, v));\n        });\n    }\n}\n";
        assert!(run(krate("epg-engine-gap", "lib.rs", src)).is_empty());
    }

    // --- the dataflow substrate ------------------------------------------

    #[test]
    fn assignment_scanner_classifies_operators() {
        assert_eq!(assignments("x = 1"), vec![2]);
        assert_eq!(assignments("x += 1"), vec![2]);
        assert_eq!(assignments("x |= m"), vec![2]);
        assert!(assignments("a == b").is_empty());
        assert!(assignments("a <= b && a >= c || a != d").is_empty());
        assert!(assignments("0 => {}").is_empty());
        assert!(assignments("for i in 0..=n {}").is_empty());
        assert_eq!(assignments("a == b; c = d").len(), 1);
    }

    #[test]
    fn place_chains_resolve_bases_and_calls() {
        let code = "dist[v] = 1";
        let (chain, call) = place_chain(code, 7).unwrap();
        assert_eq!((chain, call), ("dist[v]", false));
        let code = "q.lock().append(x)";
        let (chain, call) = place_chain(code, 8).unwrap();
        assert_eq!((chain, call), ("q.lock()", true));
        assert_eq!(first_ident("self.levels"), Some("self"));
        assert_eq!(last_ident("self.inner.cancelled"), Some("cancelled"));
    }

    #[test]
    fn binding_extraction_covers_patterns() {
        let mut defs = Vec::new();
        let_bindings("let (mut lo, hi): (usize, usize) = r;", &mut defs);
        let_bindings("if let Some(v) = slot {", &mut defs);
        closure_params("pool.parallel_for(n, s, |w, chunk| {", &mut defs);
        for_bindings("for (u, d) in pairs {", &mut defs);
        assert_eq!(defs, ["lo", "hi", "v", "w", "chunk", "u", "d"]);
    }
}
