//! A line-oriented Rust source scanner.
//!
//! Separates each line into *code text* and *comment text* without a full
//! parse: enough lexical structure — line comments, nested block comments,
//! (raw) string literals, char literals vs. lifetimes — that the rules in
//! [`crate::rules`] can match keywords in code without being fooled by a
//! `"static mut"` inside a string or an `unsafe` inside a doc comment.
//! String and char-literal *contents* are blanked in the code text (their
//! delimiters survive), so columns and therefore brace counting stay
//! aligned with the original source.

/// One source line, split by the scanner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Line {
    /// Characters lexed as code; string/char contents replaced by spaces.
    pub code: String,
    /// Characters lexed as comment (markers included), `//` and `/* */`
    /// alike; doc comments are comments here.
    pub comment: String,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comment with nesting depth.
    Block(u32),
    /// Inside `"…"`; the flag records a pending backslash escape.
    Str,
    /// Inside `r"…"`/`r#"…"#`; the payload is the `#` count.
    RawStr(u8),
    /// Inside `'…'`.
    Char,
}

/// Scans `src` into per-line code/comment text.
pub fn scan(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let mut i = 0usize;
    // True when the previous code character could continue an identifier —
    // distinguishes the raw-string prefix in `r"x"` from the identifier
    // tail in `var"` (not legal Rust, but the scanner must not wedge).
    let mut prev_ident = false;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if let State::LineComment = state {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            prev_ident = false;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur.comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::Block(1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    cur.code.push('"');
                    prev_ident = false;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw/byte string prefix: r", r#", br", b"…
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u8;
                    while chars.get(j) == Some(&'#') && hashes < u8::MAX {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = (c == 'r' || j > i + 1) && chars.get(j) == Some(&'"');
                    let is_plain_byte = c == 'b' && hashes == 0 && chars.get(i + 1) == Some(&'"');
                    if is_raw && (c == 'r' || chars.get(i + 1) == Some(&'r') || hashes > 0) {
                        for &p in &chars[i..=j] {
                            cur.code.push(p);
                        }
                        state = State::RawStr(hashes);
                        prev_ident = false;
                        i = j + 1;
                    } else if is_plain_byte {
                        cur.code.push('b');
                        cur.code.push('"');
                        state = State::Str;
                        prev_ident = false;
                        i += 2;
                    } else {
                        cur.code.push(c);
                        prev_ident = true;
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a backslash or a closing
                    // quote two ahead means a literal; otherwise `'a` is a
                    // lifetime and stays code.
                    if next == Some('\\') || chars.get(i + 2) == Some(&'\'') {
                        state = State::Char;
                        cur.code.push('\'');
                        prev_ident = false;
                        i += 1;
                    } else {
                        cur.code.push('\'');
                        prev_ident = false;
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    prev_ident = c.is_alphanumeric() || c == '_';
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::Block(depth - 1) };
                    cur.comment.push_str("*/");
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let closes = (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'));
                    if closes {
                        cur.code.push('"');
                        for _ in 0..hashes {
                            cur.code.push('#');
                        }
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        cur.code.push(' ');
                        i += 1;
                    }
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// Whether `word` appears in `text` delimited by non-identifier characters.
pub fn has_word(text: &str, word: &str) -> bool {
    find_word(text, word).is_some()
}

/// Byte offset of the first identifier-boundary occurrence of `word`.
pub fn find_word(text: &str, word: &str) -> Option<usize> {
    find_word_from(text, 0, word)
}

/// Like [`find_word`], starting the search at byte offset `from`.
pub fn find_word_from(text: &str, mut from: usize, word: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    fn comment_of(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.comment).collect()
    }

    #[test]
    fn line_comments_leave_code() {
        let src = "let x = 1; // unsafe here is comment\nlet y = 2;";
        let code = code_of(src);
        assert!(!has_word(&code[0], "unsafe"));
        assert!(comment_of(src)[0].contains("unsafe"));
        assert_eq!(code[1], "let y = 2;");
    }

    #[test]
    fn string_contents_are_blanked() {
        let code = code_of(r#"let s = "unsafe { static mut }"; call();"#);
        assert!(!has_word(&code[0], "unsafe"));
        assert!(!code[0].contains("static mut"));
        assert!(code[0].contains("call();"));
        assert_eq!(code[0].matches('"').count(), 2);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let code = code_of(r#"let s = "a\"unsafe\""; unsafe {}"#);
        assert!(has_word(&code[0], "unsafe"));
        // Only the real one, after the string, survives.
        assert_eq!(code[0].matches("unsafe").count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"unsafe \" quote\"#; static mut X: u8 = 0;";
        let code = code_of(src);
        assert!(!has_word(&code[0], "unsafe"));
        assert!(code[0].contains("static mut"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still comment unsafe */ b";
        let code = code_of(src);
        assert!(!has_word(&code[0], "unsafe"));
        assert!(code[0].contains('a') && code[0].contains('b'));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let src = "fn f() {\n/* unsafe\nstill unsafe */ let x = 1;\n}";
        let code = code_of(src);
        assert!(code.iter().all(|l| !has_word(l, "unsafe")));
        assert!(code[2].contains("let x = 1;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // 'a everywhere";
        let code = code_of(src);
        assert!(code[0].contains("fn f<'a>"));
        assert!(code[0].contains("{ x }"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let src = "let q = '\"'; let u = 'u'; unsafe {}";
        let code = code_of(src);
        assert!(has_word(&code[0], "unsafe"));
        // The quote char must not open a string that eats the rest.
        assert!(code[0].contains("let u ="));
    }

    #[test]
    fn escaped_char_literals() {
        let src = r"let nl = '\n'; let bs = '\\'; let tick = '\''; done();";
        let code = code_of(src);
        assert!(code[0].contains("done();"));
    }

    #[test]
    fn byte_strings_are_strings() {
        let src = "let b = b\"unsafe\"; let r = br#\"static mut\"#; go();";
        let code = code_of(src);
        assert!(!has_word(&code[0], "unsafe"));
        assert!(!code[0].contains("static mut"));
        assert!(code[0].contains("go();"));
    }

    #[test]
    fn identifier_ending_in_r_then_string() {
        let src = "let var = 1; let s = \"x\"; unsafe {}";
        let code = code_of(src);
        assert!(code[0].contains("let var = 1;"));
        assert!(has_word(&code[0], "unsafe"));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(!has_word("unsafe_op()", "unsafe"));
        assert!(!has_word("not_unsafe", "unsafe"));
        assert!(has_word("(unsafe)", "unsafe"));
        assert!(!has_word("compare_exchange_weak", "compare_exchange"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// # Safety\n/// unsafe is fine here\npub unsafe fn f() {}";
        let lines = scan(src);
        assert!(lines[0].comment.contains("# Safety"));
        assert!(lines[0].code.trim().is_empty());
        assert!(has_word(&lines[2].code, "unsafe"));
    }
}
