//! Intra-crate call-graph construction, and the transitive upgrade of the
//! `phase-purity` / `timing-discipline` / `panic-discipline` /
//! `hot-loop-alloc` families through it.
//!
//! The graph is built on the PR 5 token-level item model — no `syn`, no
//! type inference — so resolution is deliberately conservative and
//! documented (DESIGN.md §15):
//!
//! * **Qualified calls** (`Type::name(…)`, `Self::name(…)`) resolve to
//!   `fn name` items inside `impl Type` blocks of the same crate — the
//!   precise case, used for constructors and associated fns.
//! * **Free calls** (`name(…)`, `mod::name(…)`) resolve by bare name to
//!   every same-named `fn` in the crate.
//! * **Method calls** (`.name(…)`) fan out to every same-named `fn` in the
//!   crate (all impls — this is how trait calls reach every implementor),
//!   except names on the [`AMBIENT_METHODS`] denylist: collection/option/
//!   primitive vocabulary that would conflate `map.insert` with a crate's
//!   own `insert` and flood the graph with false edges.
//! * Calls are attributed to the **innermost** enclosing `fn` span, which
//!   attaches closure bodies to their defining fn. Cross-crate edges are
//!   not modeled: each crate's discipline is checked against its own
//!   helpers, and cross-crate blocking concerns are covered by the direct
//!   token rules.
//!
//! Soundness: the graph over-approximates call targets (name fan-out) and
//! under-approximates reachability only through closure *values* invoked
//! via parameters (`f()` on a generic parameter resolves to nothing) and
//! cross-crate calls. Both gaps are deliberate: the first has no
//! token-level answer, the second keeps ownership of findings in the
//! crate that must fix them.

use crate::arch::is_engine_crate;
use crate::flow::{hot_spans, ALLOC_TOKENS, RULE_ALLOC};
use crate::model::{CallKind, CrateModel, FileModel, Workspace};
use crate::panics::{PANIC_TOKENS, RULE_PANIC};
use crate::phases::{IO_TOKENS, RULE_PHASE, RULE_TIMING, TIME_TOKENS};
use crate::rules::Finding;

/// Method names too ambient to resolve by bare name: std collection,
/// option/result, iterator, atomics, locks, and formatting vocabulary.
/// A crate method that shadows one of these is invisible to the graph —
/// the price of not flooding it with `HashMap::insert`-shaped edges.
const AMBIENT_METHODS: &[&str] = &[
    "insert",
    "get",
    "get_mut",
    "remove",
    "len",
    "is_empty",
    "push",
    "pop",
    "clone",
    "cloned",
    "copied",
    "contains",
    "contains_key",
    "extend",
    "append",
    "iter",
    "into_iter",
    "iter_mut",
    "next",
    "map",
    "and_then",
    "then",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "is_some",
    "is_none",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_bytes",
    "to_vec",
    "to_string",
    "into",
    "from",
    "collect",
    "filter",
    "fold",
    "flat_map",
    "sum",
    "min",
    "max",
    "first",
    "last",
    "take",
    "drain",
    "clear",
    "sort",
    "sort_unstable",
    "split",
    "join",
    "find",
    "position",
    "retain",
    "rev",
    "enumerate",
    "zip",
    "chain",
    "count",
    "any",
    "all",
    "lock",
    "read",
    "write",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "compare_exchange",
    "drop",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "elapsed",
    "as_nanos",
    "as_micros",
    "as_millis",
    "as_secs",
    "abs",
    "sqrt",
    "notify_all",
    "notify_one",
    "starts_with",
    "ends_with",
    "trim",
    "parse",
    "with_capacity",
    "resize",
    "fill",
    "copy_from_slice",
    "saturating_sub",
    "saturating_add",
    "min_by_key",
    "max_by_key",
];

/// One `fn` item as a call-graph node.
#[derive(Debug)]
pub struct CgNode {
    /// Index of the owning file in `CrateModel::files`.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// First line of the span.
    pub start: usize,
    /// Last line of the span.
    pub end: usize,
}

/// The intra-crate call graph: one node per `fn` item, edges labeled with
/// the 1-based line of the call site in the caller's file.
#[derive(Debug)]
pub struct CallGraph {
    /// Nodes, in (file, declaration) order.
    pub nodes: Vec<CgNode>,
    /// Outgoing edges per node: `(callee node, call line)`.
    pub edges: Vec<Vec<(usize, usize)>>,
}

impl CallGraph {
    /// Builds the graph for one crate.
    pub fn build(c: &CrateModel) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, f) in c.files.iter().enumerate() {
            for s in &f.fns {
                nodes.push(CgNode { file: fi, name: s.name.clone(), start: s.start, end: s.end });
            }
        }
        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes.len()];
        let g = CallGraph { nodes, edges: Vec::new() };
        for (fi, f) in c.files.iter().enumerate() {
            for call in &f.calls {
                let Some(caller) = g.node_at(fi, call.line) else { continue };
                for target in g.resolve(c, fi, call.line, &call.name, &call.kind) {
                    if target == caller {
                        continue; // direct recursion adds no reachability
                    }
                    if !edges[caller].contains(&(target, call.line)) {
                        edges[caller].push((target, call.line));
                    }
                }
            }
        }
        CallGraph { nodes: g.nodes, edges }
    }

    /// The innermost `fn` node containing `line` of file `fi`.
    pub fn node_at(&self, fi: usize, line: usize) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == fi && n.start <= line && line <= n.end)
            .min_by_key(|(_, n)| n.end - n.start)
            .map(|(i, _)| i)
    }

    /// Call targets of one call site, per the header's resolution rules.
    fn resolve(
        &self,
        c: &CrateModel,
        fi: usize,
        line: usize,
        name: &str,
        kind: &CallKind,
    ) -> Vec<usize> {
        match kind {
            CallKind::Qualified(q) => {
                let ty = if q == "Self" {
                    match enclosing_impl(&c.files[fi], line) {
                        Some(t) => t.to_string(),
                        None => return Vec::new(),
                    }
                } else {
                    q.clone()
                };
                self.nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| {
                        n.name == name
                            && c.files[n.file]
                                .impls
                                .iter()
                                .any(|i| i.name == ty && i.start <= n.start && n.end <= i.end)
                    })
                    .map(|(i, _)| i)
                    .collect()
            }
            CallKind::Free | CallKind::Method => {
                if name.len() < 3 || AMBIENT_METHODS.contains(&name) {
                    return Vec::new();
                }
                self.nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| n.name == name)
                    .map(|(i, _)| i)
                    .collect()
            }
        }
    }

    /// BFS over call edges. Returns, for every reached node, its parent in
    /// the BFS tree (a start node is its own parent). Unreached nodes are
    /// `None`.
    pub fn bfs_parents(&self, starts: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        for &s in starts {
            if parent[s].is_none() {
                parent[s] = Some(s);
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &self.edges[u] {
                if parent[v].is_none() {
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// The call chain from a BFS start down to `node`, as fn names joined
    /// with ` → ` (the start node's name first).
    pub fn chain_names(&self, parents: &[Option<usize>], node: usize) -> String {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = parents[cur] {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path.iter().map(|&i| self.nodes[i].name.as_str()).collect::<Vec<_>>().join(" → ")
    }
}

/// Name of the innermost `impl` block containing `line`, if any.
pub(crate) fn enclosing_impl(f: &FileModel, line: usize) -> Option<&str> {
    f.impls
        .iter()
        .filter(|i| i.start <= line && line <= i.end)
        .min_by_key(|i| i.end - i.start)
        .map(|i| i.name.as_str())
}

/// First cycle in a digraph of `n` nodes, as the node sequence of the
/// cycle (each node once; the edge from the last back to the first closes
/// it), rotated to start at its smallest node. `None` when acyclic.
/// Deterministic: DFS in ascending node/edge order.
pub fn find_cycle(n: usize, edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        if u < n && v < n {
            adj[u].push(v);
        }
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (node, next edge index)
    for root in 0..n {
        if color[root] != 0 {
            continue;
        }
        color[root] = 1;
        stack.push((root, 0));
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if *next >= adj[u].len() {
                color[u] = 2;
                stack.pop();
                continue;
            }
            let v = adj[u][*next];
            *next += 1;
            match color[v] {
                0 => {
                    color[v] = 1;
                    stack.push((v, 0));
                }
                1 => {
                    // Back edge u -> v: the cycle is v..=u on the stack.
                    let from = stack.iter().position(|&(w, _)| w == v).unwrap();
                    let mut cycle: Vec<usize> = stack[from..].iter().map(|&(w, _)| w).collect();
                    let min_at =
                        cycle.iter().enumerate().min_by_key(|&(_, &w)| w).map(|(i, _)| i).unwrap();
                    cycle.rotate_left(min_at);
                    return Some(cycle);
                }
                _ => {}
            }
        }
    }
    None
}

/// One transitive rule family: the rule id it extends, the tokens that
/// offend, and a predicate for token lines the *line-local* rule already
/// reports (suppressed here so one defect yields one finding per site).
struct Family {
    rule: &'static str,
    tokens: &'static [&'static str],
    /// Why the reachable token is a problem, appended to the finding.
    note: &'static str,
    /// Whether a token at `line` of `f` is already covered line-locally.
    covered: fn(&FileModel, usize) -> bool,
}

const FAMILIES: &[Family] = &[
    Family {
        rule: RULE_PHASE,
        tokens: IO_TOKENS,
        note: "the timed algorithm phase re-enters the file-read phase through the call chain; \
               load inputs before the timed region",
        // Line-local phase-purity reports I/O outside `load_file`; the
        // transitive hole is precisely I/O *inside* it, reached from a
        // timed span.
        covered: |f, line| !f.in_fn_named(line, "load_file"),
    },
    Family {
        rule: RULE_TIMING,
        tokens: TIME_TOKENS,
        // Clock reads in engine code are banned outright, so the token
        // itself is always reported where it sits; the transitive finding
        // adds the timed span that makes it a measurement bug.
        note: "the helper reads the clock under a measured span; the harness owns the clock",
        covered: |_, _| false,
    },
    Family {
        rule: RULE_PANIC,
        tokens: PANIC_TOKENS,
        note: "a panic below a timed span aborts the trial exactly like an inline one — surface \
               the failure through the supervised TrialOutcome path",
        covered: |f, line| f.in_loop_or_worker(line),
    },
    Family {
        rule: RULE_ALLOC,
        tokens: ALLOC_TOKENS,
        note: "the helper allocates inside the measured region; hoist the buffer out or record a \
               reasoned epg-lint.toml entry",
        covered: |f, line| hot_spans(f).iter().any(|&(s, e)| s <= line && line <= e),
    },
];

/// Runs the transitive upgrades over every engine crate: a call site
/// inside a timed span (engine iteration loop or worker closure) whose
/// callee — at any call depth within the crate — contains a family token
/// is reported **at the call site**, with the call chain and the token's
/// location in the message.
pub fn check_transitive(ws: &Workspace, out: &mut Vec<Finding>) {
    for c in &ws.crates {
        if !is_engine_crate(&c.name) {
            continue;
        }
        let g = CallGraph::build(c);
        for (fi, f) in c.files.iter().enumerate() {
            if f.test_role {
                continue;
            }
            let hot = hot_spans(f);
            let mut seen: Vec<(usize, &str)> = Vec::new(); // (line, rule)
            for call in &f.calls {
                if f.in_test(call.line) {
                    continue;
                }
                if !hot.iter().any(|&(s, e)| s <= call.line && call.line <= e) {
                    continue;
                }
                let Some(caller) = g.node_at(fi, call.line) else { continue };
                let starts: Vec<usize> = g.edges[caller]
                    .iter()
                    .filter(|&&(_, l)| l == call.line)
                    .map(|&(v, _)| v)
                    .collect();
                if starts.is_empty() {
                    continue;
                }
                let parents = g.bfs_parents(&starts);
                for fam in FAMILIES {
                    if seen.contains(&(call.line, fam.rule)) {
                        continue;
                    }
                    if let Some(find) = first_hit(c, &g, &parents, caller, fam, f, call.line) {
                        seen.push((call.line, fam.rule));
                        out.push(find);
                    }
                }
            }
        }
    }
}

/// First reachable family token under the BFS tree, as a finding anchored
/// at the call site, or `None`.
fn first_hit(
    c: &CrateModel,
    g: &CallGraph,
    parents: &[Option<usize>],
    caller: usize,
    fam: &Family,
    f: &FileModel,
    call_line: usize,
) -> Option<Finding> {
    for (ni, node) in g.nodes.iter().enumerate() {
        if parents[ni].is_none() || ni == caller {
            continue;
        }
        let nf = &c.files[node.file];
        if nf.test_role {
            continue;
        }
        for tok in fam.tokens {
            for line in nf.token_lines(tok) {
                if line < node.start || line > node.end || nf.in_test(line) {
                    continue;
                }
                if (fam.covered)(nf, line) {
                    continue;
                }
                return Some(Finding {
                    file: f.path.clone(),
                    line: call_line,
                    rule: fam.rule,
                    message: format!(
                        "`{tok}` is reachable from this timed span via `{}` ({}:{line}): {}",
                        g.chain_names(parents, ni),
                        nf.path,
                        fam.note
                    ),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use crate::scan::scan;

    fn krate(name: &str, files: &[(&str, &str)]) -> CrateModel {
        CrateModel {
            name: name.to_string(),
            dir: format!("crates/{name}"),
            manifest_path: format!("crates/{name}/Cargo.toml"),
            manifest_lines: Vec::new(),
            deps: Vec::new(),
            dev_deps: Vec::new(),
            files: files
                .iter()
                .map(|(p, src)| {
                    FileModel::build(format!("crates/{name}/src/{p}"), scan(src), false)
                })
                .collect(),
        }
    }

    fn run(c: CrateModel) -> Vec<Finding> {
        let ws = Workspace { crates: vec![c] };
        let mut out = Vec::new();
        check_transitive(&ws, &mut out);
        out
    }

    #[test]
    fn qualified_calls_resolve_within_the_named_impl_only() {
        let src = "struct A;\nstruct B;\nimpl A {\n    fn new() -> A {\n        A\n    }\n}\nimpl B {\n    fn new() -> B {\n        B\n    }\n}\nfn use_a() {\n    let _ = A::new();\n}\n";
        let c = krate("epg-serve", &[("x.rs", src)]);
        let g = CallGraph::build(&c);
        let use_a = g.nodes.iter().position(|n| n.name == "use_a").unwrap();
        let a_new = g.nodes.iter().position(|n| n.name == "new" && n.start == 4).unwrap();
        assert_eq!(g.edges[use_a], vec![(a_new, 14)]);
    }

    #[test]
    fn ambient_method_names_resolve_to_nothing() {
        let src = "struct C;\nimpl C {\n    fn insert(&self) {}\n}\nfn caller(m: &mut std::collections::HashMap<u32, u32>) {\n    m.insert(1, 2);\n}\n";
        let c = krate("epg-serve", &[("x.rs", src)]);
        let g = CallGraph::build(&c);
        let caller = g.nodes.iter().position(|n| n.name == "caller").unwrap();
        assert!(g.edges[caller].is_empty(), "{:?}", g.edges[caller]);
    }

    #[test]
    fn closure_calls_attach_to_the_defining_fn() {
        let src = "fn helper() {}\nfn outer() {\n    let f = |x: u32| {\n        helper();\n        x\n    };\n    f(1);\n}\n";
        let c = krate("epg-serve", &[("x.rs", src)]);
        let g = CallGraph::build(&c);
        let outer = g.nodes.iter().position(|n| n.name == "outer").unwrap();
        let helper = g.nodes.iter().position(|n| n.name == "helper").unwrap();
        assert_eq!(g.edges[outer], vec![(helper, 4)]);
    }

    #[test]
    fn transitive_panic_reaches_through_two_helpers() {
        let a = "pub fn kernel(pool: &ThreadPool, rec: &mut Recorder) {\n    let mut n = 2;\n    while n > 0 {\n        if pool.is_cancelled() {\n            break;\n        }\n        step_one();\n        n -= 1;\n        rec.iteration(n);\n    }\n}\n";
        let b =
            "pub fn step_one() {\n    step_two();\n}\nfn step_two() {\n    opt().unwrap();\n}\n";
        let f = run(krate("epg-engine-gap", &[("a.rs", a), ("b.rs", b)]));
        let hit = f.iter().find(|x| x.rule == RULE_PANIC).expect("transitive panic finding");
        assert_eq!((hit.file.as_str(), hit.line), ("crates/epg-engine-gap/src/a.rs", 7));
        assert!(hit.message.contains("step_one → step_two"), "{}", hit.message);
        assert!(hit.message.contains("b.rs:5"), "{}", hit.message);
    }

    #[test]
    fn lexically_covered_tokens_are_not_doubled() {
        // The helper's unwrap sits in its own loop, so the line-local rule
        // already reports it — the transitive pass must stay silent.
        let a = "pub fn kernel(rec: &mut Recorder) {\n    loop {\n        helper_lp();\n        rec.iteration(0);\n    }\n}\nfn helper_lp() {\n    for x in [1] {\n        x_opt(x).unwrap();\n    }\n}\n";
        let f = run(krate("epg-engine-gap", &[("a.rs", a)]));
        assert!(f.iter().all(|x| x.rule != RULE_PANIC), "{f:?}");
    }

    #[test]
    fn io_inside_load_file_reached_from_a_loop_is_a_phase_hole() {
        let a = "pub fn kernel(rec: &mut Recorder) {\n    loop {\n        let _ = load_file(\"x\");\n        rec.iteration(0);\n    }\n}\npub fn load_file(p: &str) -> String {\n    std::fs::read_to_string(p).unwrap_or_default()\n}\n";
        let f = run(krate("epg-engine-gap", &[("a.rs", a)]));
        let hit = f.iter().find(|x| x.rule == RULE_PHASE).expect("transitive phase finding");
        assert_eq!(hit.line, 3);
        assert!(hit.message.contains("load_file"), "{}", hit.message);
    }

    #[test]
    fn non_engine_crates_are_out_of_scope() {
        let a = "pub fn kernel(rec: &mut Recorder) {\n    loop {\n        helper_hx();\n        rec.iteration(0);\n    }\n}\nfn helper_hx() {\n    opt().unwrap();\n}\n";
        assert!(run(krate("epg-serve", &[("a.rs", a)])).is_empty());
    }

    #[test]
    fn find_cycle_reports_none_on_a_dag_and_the_loop_on_a_ring() {
        assert_eq!(find_cycle(3, &[(0, 1), (1, 2)]), None);
        assert_eq!(find_cycle(3, &[(1, 2), (2, 1)]), Some(vec![1, 2]));
        assert_eq!(find_cycle(4, &[(2, 3), (3, 1), (1, 2), (0, 1)]), Some(vec![1, 2, 3]));
        assert_eq!(find_cycle(1, &[(0, 0)]), Some(vec![0]));
        assert_eq!(find_cycle(0, &[]), None);
    }
}
