//! The `panic-discipline` rule family.
//!
//! PR 3's trial supervisor turns failures into `TrialOutcome` rows
//! (Timeout / Panicked / Quarantined) so a crashing engine becomes a DNF
//! data point instead of a dead benchmark run. That only works if engine
//! hot paths fail through the supervised path rather than tearing down a
//! worker mid-region: a panic inside a worker closure rides the pool's
//! panic propagation across threads, and a panic inside an iteration loop
//! aborts the trial at an arbitrary point of the timed phase.
//!
//! The rule therefore forbids `unwrap`/`expect`/`panic!`/`todo!`/
//! `unimplemented!` inside the engine crates' **worker closures**
//! (arguments to the `epg-parallel` entry points) and **iteration-loop
//! bodies** (`loop`/`while`/`for`). Dispatch preambles and accessors
//! outside loops — `params.root.expect("BFS needs a root")` — are API
//! precondition checks caught by `catch_unwind` before the timed region
//! and stay out of scope. Test code is exempt.

use crate::arch::is_engine_crate;
use crate::model::{FileModel, Workspace};
use crate::rules::Finding;

/// Stable rule id for this family.
pub const RULE_PANIC: &str = "panic-discipline";

/// Tokens that abort instead of surfacing a supervised failure.
pub(crate) const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"];

/// Runs the rule over every engine crate in the model.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for c in &ws.crates {
        if !is_engine_crate(&c.name) {
            continue;
        }
        for f in &c.files {
            check_file(f, out);
        }
    }
}

fn check_file(f: &FileModel, out: &mut Vec<Finding>) {
    if f.test_role {
        return;
    }
    for tok in PANIC_TOKENS {
        for line in f.token_lines(tok) {
            if f.in_test(line) || !f.in_loop_or_worker(line) {
                continue;
            }
            out.push(Finding {
                file: f.path.clone(),
                line,
                rule: RULE_PANIC,
                message: format!(
                    "`{tok}` inside an engine worker closure or iteration loop; surface the \
                     failure through the supervised TrialOutcome path instead of aborting the \
                     timed phase",
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CrateModel;
    use crate::scan::scan;

    fn engine_file(src: &str) -> Vec<Finding> {
        let c = CrateModel {
            name: "epg-engine-gap".into(),
            dir: "crates/epg-engine-gap".into(),
            manifest_path: "crates/epg-engine-gap/Cargo.toml".into(),
            manifest_lines: Vec::new(),
            deps: Vec::new(),
            dev_deps: Vec::new(),
            files: vec![FileModel::build(
                "crates/epg-engine-gap/src/bfs.rs".into(),
                scan(src),
                false,
            )],
        };
        let ws = Workspace { crates: vec![c] };
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn unwrap_in_iteration_loop_is_flagged() {
        let src = "fn kernel(levels: &mut Vec<Vec<u32>>) {\n    loop {\n        let f = levels.last().unwrap();\n        if f.is_empty() {\n            break;\n        }\n    }\n}\n";
        let f = engine_file(src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), (RULE_PANIC, 3));
    }

    #[test]
    fn expect_in_worker_closure_is_flagged() {
        let src = "fn kernel(pool: &ThreadPool) {\n    pool.parallel_for(n, sched, |v| {\n        let x = slot(v).expect(\"empty\");\n        drop(x);\n    });\n}\n";
        let f = engine_file(src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), (RULE_PANIC, 3));
    }

    #[test]
    fn precondition_expect_outside_loops_is_in_scope_elsewhere() {
        let src = "fn run(params: &RunParams) {\n    let root = params.root.expect(\"BFS needs a root\");\n    drop(root);\n}\n";
        assert!(engine_file(src).is_empty());
    }

    #[test]
    fn panics_in_test_modules_are_exempt() {
        let src = "fn kernel() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        for x in [1] {\n            assert_eq!(x, opt().unwrap());\n        }\n    }\n}\n";
        assert!(engine_file(src).is_empty());
    }

    #[test]
    fn panic_macro_in_while_loop_is_flagged() {
        let src = "fn kernel(mut n: u32) {\n    while n > 0 {\n        if n == 7 {\n            panic!(\"boom\");\n        }\n        n -= 1;\n    }\n}\n";
        let f = engine_file(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
    }
}
