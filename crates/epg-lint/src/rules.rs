//! The concurrency-safety rules.
//!
//! Each rule walks the scanner's per-line code/comment split for one file
//! and yields [`Finding`]s. The rules encode the workspace's safety policy
//! (see DESIGN.md "Safety & static analysis"):
//!
//! 1. `safety-comment` — every `unsafe` occurrence in code is preceded by a
//!    `// SAFETY:` comment (or a `/// # Safety` doc section) on the same
//!    line or on the contiguous run of comment/attribute/blank lines above.
//! 2. `unsafe-impl` — `unsafe impl Send`/`Sync` only inside `epg-parallel`,
//!    where the one audited writer/job-pointer pair lives.
//! 3. `raw-ptr-field` — no `*mut`/`*const` struct fields outside
//!    `epg-parallel`; engines must use `DisjointWriter` instead of private
//!    raw-pointer cells.
//! 4. `cas-ordering` — `compare_exchange(_weak)` failure ordering must not
//!    be stronger than its success ordering (literal orderings only;
//!    computed orderings are skipped).
//! 5. `static-mut` — no `static mut` anywhere.

use crate::scan::{find_word, has_word, Line};

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path as given to the checker (workspace-relative in the driver).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (used by the allowlist).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Whether `file` (workspace-relative, `/`-separated) belongs to the crate
/// allowed to contain `unsafe impl Send/Sync` and raw-pointer fields.
fn in_parallel_crate(file: &str) -> bool {
    file.replace('\\', "/").contains("crates/epg-parallel/")
}

/// Runs every rule over one scanned file.
pub fn check_file(file: &str, lines: &[Line]) -> Vec<Finding> {
    let mut findings = Vec::new();
    safety_comments(file, lines, &mut findings);
    unsafe_impls(file, lines, &mut findings);
    raw_ptr_fields(file, lines, &mut findings);
    cas_orderings(file, lines, &mut findings);
    static_muts(file, lines, &mut findings);
    findings
}

fn comment_satisfies(comment: &str) -> bool {
    comment.contains("SAFETY:") || comment.contains("# Safety")
}

/// A line an upward SAFETY search may walk through: blank, comment-only,
/// or an attribute.
fn is_skippable(line: &Line) -> bool {
    let code = line.code.trim();
    code.is_empty() || code.starts_with('#') || code == ")]"
}

fn safety_comments(file: &str, lines: &[Line], out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        // Same-line comment counts (e.g. `unsafe { … } // SAFETY: …`).
        let mut ok = comment_satisfies(&line.comment);
        // Walk upward through comments, attributes, and blank lines.
        let mut j = idx;
        while !ok && j > 0 {
            j -= 1;
            let above = &lines[j];
            if comment_satisfies(&above.comment) {
                ok = true;
            } else if is_skippable(above) {
                continue;
            } else {
                break;
            }
        }
        if !ok {
            out.push(Finding {
                file: file.to_string(),
                line: idx + 1,
                rule: "safety-comment",
                message: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section) \
                          on or above it"
                    .to_string(),
            });
        }
    }
}

fn unsafe_impls(file: &str, lines: &[Line], out: &mut Vec<Finding>) {
    if in_parallel_crate(file) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let Some(pos) = find_word(code, "unsafe") else { continue };
        let rest = &code[pos + "unsafe".len()..];
        if !rest.trim_start().starts_with("impl") {
            continue;
        }
        // The implemented trait is on this line in every rustfmt layout;
        // flag conservatively if Send/Sync appears anywhere after `impl`.
        if has_word(rest, "Send") || has_word(rest, "Sync") {
            out.push(Finding {
                file: file.to_string(),
                line: idx + 1,
                rule: "unsafe-impl",
                message: "`unsafe impl Send/Sync` outside epg-parallel; use \
                          `epg_parallel::DisjointWriter` or move the audited type into the \
                          parallel crate"
                    .to_string(),
            });
        }
    }
}

fn raw_ptr_fields(file: &str, lines: &[Line], out: &mut Vec<Finding>) {
    if in_parallel_crate(file) {
        return;
    }
    let mut i = 0;
    while i < lines.len() {
        let Some(pos) = find_word(&lines[i].code, "struct") else {
            i += 1;
            continue;
        };
        // Walk from the keyword to the end of the definition — `{…}` for
        // named fields, `(…);` for tuple structs, a bare `;` for unit
        // structs — collecting per line the text inside the body. Any
        // raw-pointer type in the body is a finding.
        let mut depth = 0i32;
        let mut entered = false;
        let mut done = false;
        let mut j = i;
        let mut col = pos + "struct".len();
        while j < lines.len() && !done {
            let mut body = String::new();
            for c in lines[j].code.chars().skip(col) {
                match c {
                    '{' | '(' => {
                        if depth >= 1 {
                            body.push(c);
                        }
                        depth += 1;
                        entered = true;
                    }
                    '}' | ')' => {
                        depth -= 1;
                        if depth >= 1 {
                            body.push(c);
                        }
                        if entered && depth <= 0 {
                            done = true;
                            break;
                        }
                    }
                    ';' if !entered => {
                        done = true; // unit struct
                        break;
                    }
                    _ => {
                        if depth >= 1 {
                            body.push(c);
                        }
                    }
                }
            }
            if body.contains("*mut ") || body.contains("*const ") {
                out.push(Finding {
                    file: file.to_string(),
                    line: j + 1,
                    rule: "raw-ptr-field",
                    message: "raw-pointer struct field outside epg-parallel; hold a \
                              `DisjointWriter` (or indices) instead"
                        .to_string(),
                });
            }
            j += 1;
            col = 0;
        }
        i = j.max(i + 1);
    }
}

/// Ordering strength for the failure-vs-success comparison. `Acquire` is
/// ranked above `Release` deliberately: a failure load may not carry more
/// acquire power than the success ordering grants.
fn strength(name: &str) -> Option<u8> {
    Some(match name {
        "Relaxed" => 0,
        "Release" => 1,
        "Acquire" => 2,
        "AcqRel" => 3,
        "SeqCst" => 4,
        _ => return None,
    })
}

/// Extracts the single ordering name an argument mentions, or None when
/// the argument is computed (identifier, function call) or ambiguous.
fn literal_ordering(arg: &str) -> Option<&'static str> {
    let mut found: Option<&'static str> = None;
    for name in ["Relaxed", "Release", "Acquire", "AcqRel", "SeqCst"] {
        if has_word(arg, name) {
            if found.is_some() {
                return None;
            }
            found = Some(name);
        }
    }
    // `cas_failure_order(order)`-style computed arguments contain `(`.
    if arg.contains('(') {
        return None;
    }
    found
}

fn cas_orderings(file: &str, lines: &[Line], out: &mut Vec<Finding>) {
    let code: String = lines.iter().map(|l| l.code.as_str()).collect::<Vec<_>>().join("\n");
    let mut from = 0;
    while let Some(rel) = code[from..].find("compare_exchange") {
        let start = from + rel;
        let mut end = start + "compare_exchange".len();
        if code[end..].starts_with("_weak") {
            end += "_weak".len();
        }
        from = end;
        // Identifier boundaries: reject `.compare_exchange_weaker` etc.
        let bytes = code.as_bytes();
        if start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
            continue;
        }
        if bytes.get(end).is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_') {
            continue;
        }
        let after = code[end..].trim_start();
        if !after.starts_with('(') {
            continue;
        }
        let open = end + (code[end..].len() - after.len());
        let Some((args, _close)) = split_call_args(&code, open) else { continue };
        if args.len() < 2 {
            continue;
        }
        let success = literal_ordering(&args[args.len() - 2]);
        let failure = literal_ordering(&args[args.len() - 1]);
        let (Some(s), Some(f)) = (success, failure) else { continue };
        let (Some(sr), Some(fr)) = (strength(s), strength(f)) else { continue };
        if fr > sr {
            let line = code[..start].matches('\n').count() + 1;
            out.push(Finding {
                file: file.to_string(),
                line,
                rule: "cas-ordering",
                message: format!(
                    "compare_exchange failure ordering {f} is stronger than success \
                     ordering {s}; derive it from the success ordering instead"
                ),
            });
        }
    }
}

/// Splits a call's arguments at top-level commas. `open` indexes the `(`.
/// Returns the arguments and the index of the matching `)`.
fn split_call_args(code: &str, open: usize) -> Option<(Vec<String>, usize)> {
    let bytes = code.as_bytes();
    debug_assert_eq!(bytes[open], b'(');
    let mut depth = 0i32;
    let mut args = Vec::new();
    let mut cur = String::new();
    for (off, c) in code[open..].char_indices() {
        match c {
            '(' | '[' | '{' => {
                depth += 1;
                if depth > 1 {
                    cur.push(c);
                }
            }
            ')' | ']' | '}' => {
                depth -= 1;
                if depth == 0 {
                    if !cur.trim().is_empty() {
                        args.push(cur.trim().to_string());
                    }
                    return Some((args, open + off));
                }
                cur.push(c);
            }
            ',' if depth == 1 => {
                args.push(cur.trim().to_string());
                cur.clear();
            }
            _ => {
                if depth >= 1 {
                    cur.push(c);
                }
            }
        }
    }
    None
}

fn static_muts(file: &str, lines: &[Line], out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if let Some(pos) = find_word(&line.code, "static") {
            let rest = &line.code[pos + "static".len()..];
            if rest.trim_start().starts_with("mut") && has_word(rest, "mut") {
                out.push(Finding {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: "static-mut",
                    message: "`static mut` is forbidden; use an atomic, a lock, or \
                              `OnceLock`"
                        .to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn run(src: &str) -> Vec<Finding> {
        check_file("crates/epg-engine-x/src/lib.rs", &scan(src))
    }

    fn run_in_parallel(src: &str) -> Vec<Finding> {
        check_file("crates/epg-parallel/src/x.rs", &scan(src))
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let f = run("fn f() {\n    unsafe { g() };\n}\n");
        assert_eq!(rules_of(&f), ["safety-comment"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_comment_directly_above_passes() {
        let f = run("fn f() {\n    // SAFETY: g is fine here.\n    unsafe { g() };\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn safety_comment_through_attributes_and_blanks() {
        let src = "// SAFETY: audited.\n\n#[allow(clippy::mut_from_ref)]\nunsafe fn g() {}\n";
        assert!(run_in_parallel(src).is_empty());
    }

    #[test]
    fn doc_safety_section_passes() {
        let src =
            "/// Does things.\n///\n/// # Safety\n/// Caller checks i.\npub unsafe fn f() {}\n";
        assert!(run_in_parallel(src).is_empty());
    }

    #[test]
    fn trailing_same_line_safety_passes() {
        let f = run("let x = unsafe { g() }; // SAFETY: single-threaded here.\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn intervening_code_breaks_the_safety_link() {
        let src = "// SAFETY: stale comment.\nlet a = 1;\nunsafe { g() };\n";
        assert_eq!(rules_of(&run(src)), ["safety-comment"]);
    }

    #[test]
    fn unsafe_in_comment_or_string_is_ignored() {
        let f = run("// this would be unsafe\nlet s = \"unsafe\";\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_impl_send_sync_flagged_outside_parallel() {
        let src = "// SAFETY: justified.\nunsafe impl<T: Send> Sync for W<T> {}\n";
        assert_eq!(rules_of(&run(src)), ["unsafe-impl"]);
        assert!(run_in_parallel(src).is_empty());
    }

    #[test]
    fn plain_unsafe_trait_impl_is_not_an_unsafe_impl_finding() {
        let src = "// SAFETY: contract upheld.\nunsafe impl Searcher for S {}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn raw_ptr_named_field_flagged() {
        let src = "struct W {\n    ptr: *mut u8,\n    len: usize,\n}\n";
        let f = run(src);
        assert_eq!(rules_of(&f), ["raw-ptr-field"]);
        assert_eq!(f[0].line, 2);
        assert!(run_in_parallel(src).is_empty());
    }

    #[test]
    fn raw_ptr_tuple_field_flagged() {
        let f = run("struct C(*mut f64);\n");
        assert_eq!(rules_of(&f), ["raw-ptr-field"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn raw_ptr_local_variable_is_fine() {
        let src = "fn f(s: &mut [u8]) {\n    let p: *mut u8 = s.as_mut_ptr();\n    drop(p);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unit_and_plain_structs_pass() {
        assert!(run("struct A;\nstruct B { x: u32 }\nstruct C(u64);\n").is_empty());
    }

    #[test]
    fn cas_failure_stronger_than_success_flagged() {
        let src = "fn f(a: &AtomicU32) {\n    let _ = a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Acquire);\n}\n";
        let f = run(src);
        assert_eq!(rules_of(&f), ["cas-ordering"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn cas_equal_or_weaker_failure_passes() {
        let ok = [
            "a.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst);",
            "a.compare_exchange_weak(0, 1, Ordering::AcqRel, Ordering::Acquire);",
            "a.compare_exchange(0, 1, Ordering::Release, Ordering::Relaxed);",
            "a.compare_exchange_weak(0, 1, Ordering::Relaxed, Ordering::Relaxed);",
        ];
        for line in ok {
            assert!(run(&format!("fn f() {{ {line} }}\n")).is_empty(), "{line}");
        }
    }

    #[test]
    fn cas_acquire_failure_needs_acquire_success() {
        let bad = "a.compare_exchange_weak(0, 1, Ordering::Release, Ordering::Acquire);";
        assert_eq!(rules_of(&run(&format!("fn f() {{ {bad} }}\n"))), ["cas-ordering"]);
    }

    #[test]
    fn cas_computed_orderings_skipped() {
        let src =
            "fn f(o: Ordering) {\n    a.compare_exchange_weak(c, n, o, cas_failure_order(o));\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn cas_multiline_call_parsed() {
        let src = "fn f() {\n    a.compare_exchange(\n        cur,\n        next,\n        Ordering::Relaxed,\n        Ordering::SeqCst,\n    );\n}\n";
        let f = run(src);
        assert_eq!(rules_of(&f), ["cas-ordering"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn static_mut_flagged_everywhere() {
        let src = "static mut COUNTER: u32 = 0;\n";
        assert_eq!(rules_of(&run(src)), ["static-mut"]);
        assert_eq!(rules_of(&run_in_parallel(src)), ["static-mut"]);
    }

    #[test]
    fn plain_static_passes() {
        assert!(run("static N: u32 = 0;\nfn f(x: &'static str) {}\n").is_empty());
    }

    #[test]
    fn findings_render_file_line_rule() {
        let f = run("fn f() { unsafe { g() } }\n");
        let s = f[0].to_string();
        assert!(s.starts_with("crates/epg-engine-x/src/lib.rs:1: [safety-comment]"), "{s}");
    }
}
