//! The `locking` rule family: lock-order, blocking, condvar, and
//! guard-scope discipline over named `Mutex`/`RwLock` fields.
//!
//! The serving layer (PR 9) is the first subsystem whose locks live for
//! the process lifetime, so a latent inversion or a blocking call under a
//! lock is a production deadlock or a convoy, not a benchmark artifact.
//! TSan only sees interleavings that happen; these rules check the shape
//! of the code (DESIGN.md §15):
//!
//! * `lock-order-cycle` — a global acquisition graph over named lock
//!   *fields* (`(crate, struct, field)` nodes; local `Mutex` bindings are
//!   out of scope). Acquiring `B` while holding `A` — directly or through
//!   the intra-crate call graph — adds edge `A → B`; any cycle is a
//!   deadlock two threads can reach by taking the edges in opposite
//!   orders. Field-level nodes cannot distinguish two *instances* of the
//!   same field, so self-edges are not reported.
//! * `blocking-while-locked` — no `QueryEngine::query` call, file I/O, or
//!   foreign `Condvar` wait may be reachable (directly or through calls)
//!   while a lock guard is held. Waiting on a condvar with the *held*
//!   guard itself is the condvar protocol and is exempt — when it is the
//!   only lock held.
//! * `condvar-wait-loop` — every wait on a named `Condvar` field must sit
//!   inside a loop: condvars wake spuriously, and a missed predicate
//!   re-check sleeps forever.
//! * `guard-across-span` — no guard may be live across a pool-dispatch
//!   entry point, a `Recorder::record` telemetry emission, or a condvar
//!   notify: dispatch and telemetry extend the critical section into
//!   foreign code, and notifying while holding the lock wakes threads
//!   straight into contention (waiters re-check the predicate under the
//!   lock, so notify-after-unlock never loses a wakeup).
//!
//! Guard liveness is lexical: a `let g = place.lock();` guard lives from
//! its binding to the end of the innermost enclosing brace block, or to
//! an explicit `drop(g)`; a chained temporary (`place.lock().field`) lives
//! only on its own line. Receivers resolve through the enclosing `impl`
//! (`self.field`) or fan out to every struct with that field name.
//! Test-role files and `#[cfg(test)]` spans are exempt.

use crate::arch::layer_of;
use crate::callgraph::{enclosing_impl, find_cycle, CallGraph};
use crate::flow::{last_ident, let_bindings, place_chain};
use crate::model::{CrateModel, FileModel, Workspace, PAR_ENTRY_POINTS};
use crate::phases::IO_TOKENS;
use crate::rules::Finding;

/// Stable rule id: cycle in the global lock-acquisition graph.
pub const RULE_LOCK_CYCLE: &str = "lock-order-cycle";

/// Stable rule id: blocking operation reachable under a held guard.
pub const RULE_BLOCKING: &str = "blocking-while-locked";

/// Stable rule id: condvar wait outside a predicate loop.
pub const RULE_CV_LOOP: &str = "condvar-wait-loop";

/// Stable rule id: guard live across a dispatch/telemetry/wake boundary.
pub const RULE_GUARD_SPAN: &str = "guard-across-span";

/// Tokens that acquire a guard from a lock field.
const ACQUIRE_TOKENS: &[&str] = &[".lock()", ".read()", ".write()"];

/// Tokens that block by themselves (beyond condvar waits, handled with
/// receiver resolution): engine compute and file I/O.
const BLOCKING_TOKENS: &[&str] = &[".query("];

/// Tokens a live guard must not span: pool dispatch, telemetry emission,
/// and condvar notification.
const BOUNDARY_TOKENS: &[&str] = &[".record(", ".notify_all(", ".notify_one("];

/// One named lock: a `Mutex`/`RwLock` struct field.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct LockKey {
    krate: String,
    strukt: String,
    field: String,
}

impl LockKey {
    fn display(&self) -> String {
        format!("{}.{}", self.strukt, self.field)
    }
}

/// One guard-liveness interval inside a fn.
struct Held {
    keys: Vec<LockKey>,
    /// Binding name for `let` guards; `None` for one-line temporaries.
    guard: Option<String>,
    from: usize,
    to: usize,
}

/// One acquisition-graph edge with the site that creates it.
struct LockEdge {
    from: LockKey,
    to: LockKey,
    file: String,
    line: usize,
    /// Call chain for transitive edges, empty for direct ones.
    via: String,
}

/// Runs the locking family over every policy crate.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut edges: Vec<LockEdge> = Vec::new();
    for c in &ws.crates {
        if layer_of(&c.name).is_none() {
            continue;
        }
        check_crate(c, out, &mut edges);
    }
    check_cycles(&edges, out);
}

fn check_crate(c: &CrateModel, out: &mut Vec<Finding>, edges: &mut Vec<LockEdge>) {
    let locks = lock_fields(c);
    let cvs = condvar_fields(c);
    if locks.is_empty() && cvs.is_empty() {
        return;
    }
    let g = CallGraph::build(c);
    // Acquisitions per call-graph node, for transitive lock-order edges.
    let node_acqs: Vec<Vec<LockKey>> = g
        .nodes
        .iter()
        .map(|n| {
            let f = &c.files[n.file];
            (n.start..=n.end)
                .filter(|&l| !f.in_test(l))
                .flat_map(|l| acquisitions(c, f, l, &locks))
                .flat_map(|a| a.keys)
                .collect()
        })
        .collect();
    for (fi, f) in c.files.iter().enumerate() {
        if f.test_role {
            continue;
        }
        check_cv_loops(f, &cvs, out);
        for span in &f.fns {
            let held = held_intervals(c, f, span, &locks);
            for h in &held {
                for line in h.from..=h.to {
                    if f.in_test(line) {
                        continue;
                    }
                    check_line(c, f, fi, &g, &node_acqs, &locks, &cvs, &held, h, line, out, edges);
                }
            }
        }
    }
}

/// All `Mutex`/`RwLock` fields of the crate's structs.
fn lock_fields(c: &CrateModel) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for f in &c.files {
        for s in &f.structs {
            for fl in &s.fields {
                if fl.ty_head == "Mutex" || fl.ty_head == "RwLock" {
                    out.push((s.name.clone(), fl.name.clone()));
                }
            }
        }
    }
    out
}

/// All `Condvar` field names of the crate's structs.
fn condvar_fields(c: &CrateModel) -> Vec<String> {
    let mut out = Vec::new();
    for f in &c.files {
        for s in &f.structs {
            for fl in &s.fields {
                if fl.ty_head == "Condvar" && !out.contains(&fl.name) {
                    out.push(fl.name.clone());
                }
            }
        }
    }
    out
}

/// One resolved acquisition on a line.
struct Acq {
    keys: Vec<LockKey>,
    /// Whether the acquisition ends its statement (`….lock();`) — the
    /// shape of a named guard binding.
    statement_final: bool,
}

/// Acquisitions of named lock fields on `line` (1-based) of `f`.
fn acquisitions(
    c: &CrateModel,
    f: &FileModel,
    line: usize,
    locks: &[(String, String)],
) -> Vec<Acq> {
    let Some(code) = f.lines.get(line - 1).map(|l| l.code.as_str()) else { return Vec::new() };
    let mut out = Vec::new();
    for tok in ACQUIRE_TOKENS {
        let mut from = 0;
        while let Some(pos) = code[from..].find(tok) {
            let at = from + pos;
            from = at + tok.len();
            let keys = resolve_receiver(c, f, line, code, at, locks);
            if keys.is_empty() {
                continue; // a local binding or an unrelated read()/write()
            }
            let rest = code[at + tok.len()..].trim_start();
            out.push(Acq { keys, statement_final: rest.is_empty() || rest.starts_with(';') });
        }
    }
    out
}

/// Lock keys a receiver chain ending at byte `at` can denote. `self.field`
/// resolves through the enclosing impl; longer chains (or no impl match)
/// fan out to every struct declaring the field.
fn resolve_receiver(
    c: &CrateModel,
    f: &FileModel,
    line: usize,
    code: &str,
    at: usize,
    locks: &[(String, String)],
) -> Vec<LockKey> {
    let Some((chain, _)) = place_chain(code, at) else { return Vec::new() };
    let Some(field) = last_ident(chain) else { return Vec::new() };
    let mut cands: Vec<&(String, String)> = locks.iter().filter(|(_, fl)| fl == field).collect();
    if cands.is_empty() {
        return Vec::new();
    }
    if cands.len() > 1 && chain.starts_with("self.") {
        if let Some(ty) = enclosing_impl(f, line) {
            let narrowed: Vec<&(String, String)> =
                cands.iter().copied().filter(|(s, _)| s == ty).collect();
            if !narrowed.is_empty() {
                cands = narrowed;
            }
        }
    }
    cands
        .into_iter()
        .map(|(s, fl)| LockKey { krate: c.name.clone(), strukt: s.clone(), field: fl.clone() })
        .collect()
}

/// Guard-liveness intervals of one fn span.
fn held_intervals(
    c: &CrateModel,
    f: &FileModel,
    span: &crate::model::FnSpan,
    locks: &[(String, String)],
) -> Vec<Held> {
    let mut out = Vec::new();
    for line in span.start..=span.end {
        if f.in_test(line) {
            continue;
        }
        let code = f.lines.get(line - 1).map(|l| l.code.as_str()).unwrap_or("");
        for acq in acquisitions(c, f, line, locks) {
            let mut names = Vec::new();
            let_bindings(code, &mut names);
            if acq.statement_final && !names.is_empty() {
                let guard = names.last().unwrap().clone();
                let mut to = f.block_end(line).min(span.end);
                for l in line + 1..=to {
                    let lc = f.lines.get(l - 1).map(|x| x.code.as_str()).unwrap_or("");
                    if lc.contains(&format!("drop({guard})")) {
                        to = l.saturating_sub(1).max(line);
                        break;
                    }
                }
                out.push(Held { keys: acq.keys, guard: Some(guard), from: line, to });
            } else {
                out.push(Held { keys: acq.keys, guard: None, from: line, to: line });
            }
        }
    }
    out
}

/// `condvar-wait-loop`: every wait on a named `Condvar` field must fall
/// inside a loop body.
fn check_cv_loops(f: &FileModel, cvs: &[String], out: &mut Vec<Finding>) {
    for line in f.token_lines(".wait(") {
        if f.in_test(line) {
            continue;
        }
        let Some(field) = cv_wait_receiver(f, line, cvs) else { continue };
        if !f.loops.iter().any(|&(s, e)| s <= line && line <= e) {
            out.push(Finding {
                file: f.path.clone(),
                line,
                rule: RULE_CV_LOOP,
                message: format!(
                    "`{field}.wait(…)` outside a predicate loop: condvars wake spuriously and a \
                     missed re-check sleeps forever — wrap the wait in `while !condition {{ \
                     cv.wait(&mut guard) }}`"
                ),
            });
        }
    }
}

/// The condvar field name a `.wait(` on `line` is called on, if any.
fn cv_wait_receiver(f: &FileModel, line: usize, cvs: &[String]) -> Option<String> {
    let code = f.lines.get(line - 1).map(|l| l.code.as_str())?;
    let mut from = 0;
    while let Some(pos) = code[from..].find(".wait(") {
        let at = from + pos;
        from = at + 6;
        if let Some((chain, _)) = place_chain(code, at) {
            if let Some(field) = last_ident(chain) {
                if cvs.iter().any(|c| c == field) {
                    return Some(field.to_string());
                }
            }
        }
    }
    None
}

/// Checks one held line for blocking calls, boundary tokens, and new
/// acquisitions (lock-order edges).
#[allow(clippy::too_many_arguments)]
fn check_line(
    c: &CrateModel,
    f: &FileModel,
    fi: usize,
    g: &CallGraph,
    node_acqs: &[Vec<LockKey>],
    locks: &[(String, String)],
    cvs: &[String],
    held: &[Held],
    h: &Held,
    line: usize,
    out: &mut Vec<Finding>,
    edges: &mut Vec<LockEdge>,
) {
    let code = f.lines.get(line - 1).map(|l| l.code.as_str()).unwrap_or("");
    let held_now: Vec<&Held> = held.iter().filter(|x| x.from <= line && line <= x.to).collect();
    let lock_disp = h.keys.iter().map(LockKey::display).collect::<Vec<_>>().join("/");

    // Direct blocking tokens under the guard.
    for tok in BLOCKING_TOKENS.iter().chain(IO_TOKENS) {
        if !code.contains(*tok) {
            continue;
        }
        out.push(Finding {
            file: f.path.clone(),
            line,
            rule: RULE_BLOCKING,
            message: format!(
                "`{tok}` while the `{lock_disp}` guard is held: the lock is pinned for the whole \
                 blocking operation and every contender stalls behind it — compute first, then \
                 take the lock to publish"
            ),
        });
    }

    // Condvar waits: the own-guard wait is the condvar protocol; waiting
    // on a foreign condvar (or with a second lock held) blocks contenders.
    if let Some(field) = cv_wait_receiver(f, line, cvs) {
        let args = wait_args(code);
        let own = h.guard.as_deref().is_some_and(|gd| args.contains(gd));
        let sole = held_now.len() == 1;
        if !(own && sole) {
            out.push(Finding {
                file: f.path.clone(),
                line,
                rule: RULE_BLOCKING,
                message: format!(
                    "`{field}.wait(…)` while the `{lock_disp}` guard is held: the wait parks this \
                     thread with a foreign lock still taken — only the guard passed to the wait \
                     is released"
                ),
            });
        }
    }

    // Boundary tokens: dispatch, telemetry, notify.
    for tok in BOUNDARY_TOKENS.iter().chain(PAR_ENTRY_POINTS) {
        if !code.contains(*tok) {
            continue;
        }
        out.push(Finding {
            file: f.path.clone(),
            line,
            rule: RULE_GUARD_SPAN,
            message: format!(
                "`{tok}…)` while the `{lock_disp}` guard is held: the guard outlives its critical \
                 section across a dispatch/telemetry/wake boundary — drop it first (waiters \
                 re-check the predicate under the lock, so notify-after-unlock is safe)"
            ),
        });
    }

    // New acquisitions under the guard: direct lock-order edges.
    for acq in acquisitions(c, f, line, locks) {
        if line == h.from {
            continue; // the interval's own acquisition
        }
        for from_key in &h.keys {
            for to_key in &acq.keys {
                if from_key != to_key {
                    edges.push(LockEdge {
                        from: from_key.clone(),
                        to: to_key.clone(),
                        file: f.path.clone(),
                        line,
                        via: String::new(),
                    });
                }
            }
        }
    }

    // Transitive: calls made while the guard is held.
    let Some(caller) = g.node_at(fi, line) else { return };
    let starts: Vec<usize> =
        g.edges[caller].iter().filter(|&&(_, l)| l == line).map(|&(v, _)| v).collect();
    if starts.is_empty() {
        return;
    }
    let parents = g.bfs_parents(&starts);
    for (ni, node) in g.nodes.iter().enumerate() {
        if parents[ni].is_none() || ni == caller {
            continue;
        }
        let nf = &c.files[node.file];
        if nf.test_role {
            continue;
        }
        // Reached blocking operation → blocking-while-locked with chain.
        if let Some(tok) = node_blocking_token(nf, node.start, node.end, cvs) {
            out.push(Finding {
                file: f.path.clone(),
                line,
                rule: RULE_BLOCKING,
                message: format!(
                    "`{tok}` is reachable via `{}` while the `{lock_disp}` guard is held: the \
                     callee blocks with the lock still taken — compute first, then take the lock \
                     to publish",
                    g.chain_names(&parents, ni),
                ),
            });
        }
        // Reached acquisitions → transitive lock-order edges.
        for to_key in &node_acqs[ni] {
            for from_key in &h.keys {
                if from_key != to_key {
                    edges.push(LockEdge {
                        from: from_key.clone(),
                        to: to_key.clone(),
                        file: f.path.clone(),
                        line,
                        via: g.chain_names(&parents, ni),
                    });
                }
            }
        }
    }
}

/// The argument text of the first `.wait(` on the line.
fn wait_args(code: &str) -> &str {
    let Some(pos) = code.find(".wait(") else { return "" };
    let rest = &code[pos + 6..];
    &rest[..rest.find(')').unwrap_or(rest.len())]
}

/// First blocking token inside a reached fn span (condvar waits count
/// regardless of predicate-loop shape: they still park the caller).
fn node_blocking_token(
    f: &FileModel,
    start: usize,
    end: usize,
    cvs: &[String],
) -> Option<&'static str> {
    for tok in BLOCKING_TOKENS.iter().chain(IO_TOKENS) {
        if f.token_lines(tok).iter().any(|&l| start <= l && l <= end && !f.in_test(l)) {
            return Some(tok);
        }
    }
    for l in f.token_lines(".wait(") {
        if start <= l && l <= end && !f.in_test(l) && cv_wait_receiver(f, l, cvs).is_some() {
            return Some("Condvar::wait");
        }
    }
    None
}

/// Detects cycles in the accumulated acquisition graph and reports one
/// finding per cycle, anchored at the lexically first edge site.
fn check_cycles(edges: &[LockEdge], out: &mut Vec<Finding>) {
    let mut keys: Vec<&LockKey> = Vec::new();
    for e in edges {
        for k in [&e.from, &e.to] {
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
    }
    keys.sort();
    keys.dedup();
    let idx = |k: &LockKey| keys.iter().position(|&x| x == k).unwrap();
    let mut pairs: Vec<(usize, usize)> = edges.iter().map(|e| (idx(&e.from), idx(&e.to))).collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut remaining = pairs;
    // Peel one cycle at a time so independent cycles each get a finding.
    while let Some(cycle) = find_cycle(keys.len(), &remaining) {
        let on_cycle = |u: usize, v: usize| {
            cycle.iter().enumerate().any(|(i, &a)| {
                let b = cycle[(i + 1) % cycle.len()];
                (a, b) == (u, v)
            })
        };
        // One site per cycle edge, in ring order: the lexically first
        // LockEdge that created it.
        let mut sites: Vec<&LockEdge> = Vec::new();
        for (i, &a) in cycle.iter().enumerate() {
            let b = cycle[(i + 1) % cycle.len()];
            if let Some(site) = edges
                .iter()
                .filter(|e| (idx(&e.from), idx(&e.to)) == (a, b))
                .min_by(|x, y| (&x.file, x.line).cmp(&(&y.file, y.line)))
            {
                sites.push(site);
            }
        }
        let ring: Vec<String> =
            cycle.iter().chain(cycle.first()).map(|&i| keys[i].display()).collect();
        let edge_desc: Vec<String> = sites
            .iter()
            .map(|e| {
                if e.via.is_empty() {
                    format!("{}:{}", e.file, e.line)
                } else {
                    format!("{}:{} via `{}`", e.file, e.line, e.via)
                }
            })
            .collect();
        let anchor = sites
            .iter()
            .min_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)))
            .expect("cycle has at least one edge site");
        out.push(Finding {
            file: anchor.file.clone(),
            line: anchor.line,
            rule: RULE_LOCK_CYCLE,
            message: format!(
                "lock-acquisition cycle `{}` (edges: {}): two threads taking these locks in \
                 opposite orders deadlock — impose one global acquisition order",
                ring.join(" → "),
                edge_desc.join(", "),
            ),
        });
        remaining.retain(|&(u, v)| !on_cycle(u, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use crate::scan::scan;

    fn krate(name: &str, src: &str) -> CrateModel {
        CrateModel {
            name: name.to_string(),
            dir: format!("crates/{name}"),
            manifest_path: format!("crates/{name}/Cargo.toml"),
            manifest_lines: Vec::new(),
            deps: Vec::new(),
            dev_deps: Vec::new(),
            files: vec![FileModel::build(format!("crates/{name}/src/lib.rs"), scan(src), false)],
        }
    }

    fn run(c: CrateModel) -> Vec<Finding> {
        let ws = Workspace { crates: vec![c] };
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    fn rules_of(f: &[Finding]) -> Vec<&str> {
        f.iter().map(|x| x.rule).collect()
    }

    const STRUCTS: &str = "pub struct Reg {\n    inner: Mutex<u32>,\n    cv: Condvar,\n}\npub struct Store {\n    slots: Mutex<Vec<u32>>,\n}\n";

    #[test]
    fn wait_outside_a_loop_is_flagged_and_own_guard_wait_is_not_blocking() {
        let src = format!(
            "{STRUCTS}impl Reg {{\n    pub fn pause(&self) {{\n        let mut inner = self.inner.lock();\n        self.cv.wait(&mut inner);\n    }}\n}}\n"
        );
        let f = run(krate("epg-serve", &src));
        assert_eq!(rules_of(&f), vec![RULE_CV_LOOP], "{f:?}");
        assert_eq!(f[0].line, 11);
    }

    #[test]
    fn wait_inside_a_predicate_loop_passes() {
        let src = format!(
            "{STRUCTS}impl Reg {{\n    pub fn pause(&self) {{\n        let mut inner = self.inner.lock();\n        while *inner == 0 {{\n            self.cv.wait(&mut inner);\n        }}\n    }}\n}}\n"
        );
        assert!(run(krate("epg-serve", &src)).is_empty());
    }

    #[test]
    fn engine_query_under_a_guard_is_blocking() {
        let src = format!(
            "{STRUCTS}impl Reg {{\n    pub fn refresh(&self, engine: &dyn QueryEngine) {{\n        let mut inner = self.inner.lock();\n        *inner = engine.query(Algorithm::Bfs);\n    }}\n}}\n"
        );
        let f = run(krate("epg-serve", &src));
        assert_eq!(rules_of(&f), vec![RULE_BLOCKING]);
        assert_eq!(f[0].line, 11);
        assert!(f[0].message.contains("Reg.inner"), "{}", f[0].message);
    }

    #[test]
    fn blocking_reached_through_a_helper_reports_the_chain() {
        let src = format!(
            "{STRUCTS}impl Reg {{\n    pub fn refresh(&self, engine: &dyn QueryEngine) {{\n        let mut inner = self.inner.lock();\n        *inner = self.recompute(engine);\n    }}\n    fn recompute(&self, engine: &dyn QueryEngine) -> u32 {{\n        engine.query(Algorithm::Bfs)\n    }}\n}}\n"
        );
        let f = run(krate("epg-serve", &src));
        assert_eq!(rules_of(&f), vec![RULE_BLOCKING]);
        assert!(f[0].message.contains("via `recompute`"), "{}", f[0].message);
    }

    #[test]
    fn notify_under_the_guard_is_a_span_violation_and_drop_clears_it() {
        let bad = format!(
            "{STRUCTS}impl Reg {{\n    pub fn publish(&self) {{\n        let mut inner = self.inner.lock();\n        *inner = 1;\n        self.cv.notify_all();\n    }}\n}}\n"
        );
        let f = run(krate("epg-serve", &bad));
        assert_eq!(rules_of(&f), vec![RULE_GUARD_SPAN]);
        assert_eq!(f[0].line, 12);

        let good = format!(
            "{STRUCTS}impl Reg {{\n    pub fn publish(&self) {{\n        let mut inner = self.inner.lock();\n        *inner = 1;\n        drop(inner);\n        self.cv.notify_all();\n    }}\n}}\n"
        );
        assert!(run(krate("epg-serve", &good)).is_empty());
    }

    #[test]
    fn block_scoped_guard_does_not_leak_past_its_block() {
        let src = format!(
            "{STRUCTS}impl Reg {{\n    pub fn publish(&self) {{\n        {{\n            let mut inner = self.inner.lock();\n            *inner = 1;\n        }}\n        self.cv.notify_all();\n    }}\n}}\n"
        );
        assert!(run(krate("epg-serve", &src)).is_empty());
    }

    #[test]
    fn chained_temporary_lives_only_on_its_line() {
        let src = format!(
            "{STRUCTS}impl Reg {{\n    pub fn bump(&self) {{\n        let v = *self.inner.lock() + 1;\n        self.cv.notify_all();\n    }}\n}}\n"
        );
        assert!(run(krate("epg-serve", &src)).is_empty());
    }

    #[test]
    fn interprocedural_lock_cycle_is_detected() {
        let src = format!(
            "{STRUCTS}impl Reg {{\n    pub fn sweep(&self, store: &Store) {{\n        let mut inner = self.inner.lock();\n        store.absorb(&mut inner);\n    }}\n    fn note(&self) {{\n        let mut inner = self.inner.lock();\n        *inner += 1;\n    }}\n}}\nimpl Store {{\n    pub fn absorb(&self, pending: &mut u32) {{\n        let mut slots = self.slots.lock();\n        slots.push(*pending);\n    }}\n    pub fn flush(&self, reg: &Reg) {{\n        let slots = self.slots.lock();\n        reg.note();\n    }}\n}}\n"
        );
        let f = run(krate("epg-serve", &src));
        assert_eq!(rules_of(&f), vec![RULE_LOCK_CYCLE], "{f:?}");
        assert!(f[0].message.contains("Reg.inner → Store.slots → Reg.inner"), "{}", f[0].message);
        assert!(f[0].message.contains("via `absorb`"), "{}", f[0].message);
    }

    #[test]
    fn nested_acquisition_without_a_cycle_is_not_a_finding() {
        let src = format!(
            "{STRUCTS}impl Reg {{\n    pub fn sweep(&self, store: &Store) {{\n        let mut inner = self.inner.lock();\n        store.absorb(&mut inner);\n    }}\n}}\nimpl Store {{\n    pub fn absorb(&self, pending: &mut u32) {{\n        let mut slots = self.slots.lock();\n        slots.push(*pending);\n    }}\n}}\n"
        );
        assert!(run(krate("epg-serve", &src)).is_empty());
    }

    #[test]
    fn local_mutex_bindings_are_out_of_scope() {
        let src = "pub fn reduce() {\n    let partials = Mutex::new(Vec::new());\n    let mut p = partials.lock();\n    p.push(1);\n    rec.record(1);\n}\n";
        assert!(run(krate("epg-parallel", src)).is_empty());
    }

    #[test]
    fn test_spans_and_vendored_crates_are_exempt() {
        let src = format!(
            "{STRUCTS}#[cfg(test)]\nmod tests {{\n    impl Reg {{\n        fn t(&self) {{\n            let mut inner = self.inner.lock();\n            self.cv.wait(&mut inner);\n        }}\n    }}\n}}\n"
        );
        assert!(run(krate("epg-serve", &src)).is_empty());
        let vendored = format!(
            "{STRUCTS}impl Reg {{\n    pub fn pause(&self) {{\n        let mut inner = self.inner.lock();\n        self.cv.wait(&mut inner);\n    }}\n}}\n"
        );
        assert!(run(krate("parking_lot", &vendored)).is_empty());
    }
}
