//! Property tests for the lexical scanner: lint keywords planted inside
//! string literals, char literals, doc comments, and (nested) block
//! comments must never be misattributed — strings never leak into the
//! comment channel, comments never leak into the code channel, and the
//! rules see none of it. The dual property also holds: a real `unsafe`
//! block stays flaggable no matter how much comment/string noise
//! surrounds it.

use epg_lint::rules::check_file;
use epg_lint::scan::{has_word, scan};
use proptest::prelude::*;

/// Keywords every rule keys on; planting any of them in a non-code
/// position must be invisible to the rules.
fn keyword() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("unsafe"),
        Just("unsafe impl Sync for X {}"),
        Just("static mut G: u32 = 0;"),
        Just("compare_exchange(0, 1, Ordering::Relaxed, Ordering::SeqCst)"),
        Just("SAFETY: totally fine"),
        Just("*mut f64"),
    ]
}

fn ident() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

/// Keywords safe to plant in comment-noise: everything except "SAFETY:",
/// which would legitimately satisfy the safety-comment rule for an
/// `unsafe` on the next line.
fn comment_safe_keyword() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("unsafe"),
        Just("unsafe impl Sync for X {}"),
        Just("static mut G: u32 = 0;"),
        Just("compare_exchange(0, 1, Ordering::Relaxed, Ordering::SeqCst)"),
        Just("*mut f64"),
    ]
}

/// One source line that buries `payload` somewhere no rule may look.
fn noise_line() -> impl Strategy<Value = String> {
    (keyword(), comment_safe_keyword(), ident(), 0usize..3).prop_map(
        |(payload, comment_payload, name, kind)| match kind {
            // Plain string literal.
            0 => format!("let {name} = \"{payload}\";"),
            // Raw string literal (payload may contain quotes-free text only,
            // which all keyword() variants satisfy).
            1 => format!("let {name} = r#\"{payload}\"#;"),
            // Line comment that is NOT a SAFETY comment.
            _ => format!("let {name} = 0; // note: {comment_payload}"),
        },
    )
}

/// A block comment spanning `depth` nested levels with keywords inside.
fn nested_block_comment() -> impl Strategy<Value = String> {
    (keyword(), 1usize..4).prop_map(|(payload, depth)| {
        let open = "/*".repeat(depth);
        let close = "*/".repeat(depth);
        format!("{open} {payload}\n still commented {payload} {close}")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn keywords_in_strings_never_reach_rules(lines in proptest::collection::vec(noise_line(), 1..12)) {
        let src = lines.join("\n");
        let scanned = scan(&src);
        prop_assert_eq!(scanned.len(), lines.len(), "scanner must preserve line count");
        for line in &scanned {
            // String contents are blanked: no keyword survives in code...
            prop_assert!(!has_word(&line.code, "unsafe"), "unsafe leaked into code: {:?}", line);
            prop_assert!(!line.code.contains("compare_exchange"), "CAS leaked into code: {:?}", line);
            prop_assert!(!line.code.contains("*mut"), "*mut leaked into code: {:?}", line);
            // ...and string contents never masquerade as comments.
            prop_assert!(!line.comment.contains("totally fine") || line.code.trim_end().ends_with("0;"),
                "string payload leaked into comment channel: {:?}", line);
        }
        prop_assert!(check_file("noise.rs", &scanned).is_empty(),
            "noise-only file produced findings: {:?}", check_file("noise.rs", &scanned));
    }

    #[test]
    fn nested_block_comments_stay_comments(blocks in proptest::collection::vec(nested_block_comment(), 1..5)) {
        let src = blocks.join("\n");
        let scanned = scan(&src);
        for line in &scanned {
            prop_assert!(!has_word(&line.code, "unsafe"), "unsafe leaked out of a block comment: {:?}", line);
            prop_assert!(!has_word(&line.code, "static"), "static leaked out of a block comment: {:?}", line);
        }
        prop_assert!(check_file("blocks.rs", &scanned).is_empty());
    }

    #[test]
    fn doc_comments_are_comment_only(payload in keyword(), name in ident()) {
        let src = format!("/// {payload}\n//! {payload}\nfn {name}() {{}}\n");
        let scanned = scan(&src);
        prop_assert!(!has_word(&scanned[0].code, "unsafe"));
        prop_assert!(!has_word(&scanned[1].code, "unsafe"));
        prop_assert!(scanned[0].comment.contains(payload) || scanned[1].comment.contains(payload));
        prop_assert!(check_file("docs.rs", &scanned).is_empty());
    }

    #[test]
    fn real_unsafe_is_still_flagged_through_noise(before in proptest::collection::vec(noise_line(), 0..6),
                                                  after in proptest::collection::vec(noise_line(), 0..6)) {
        // Noise lines above and below must neither hide the violation nor
        // satisfy its SAFETY requirement (noise comments say "note:", not
        // "SAFETY:").
        let mut lines = before.clone();
        lines.push("fn f(p: *mut u8) { unsafe { *p = 1 } }".to_string());
        lines.extend(after.clone());
        let src = lines.join("\n");
        let findings = check_file("mixed.rs", &scan(&src));
        prop_assert_eq!(findings.len(), 1, "exactly the planted unsafe must fire: {:?}", findings);
        prop_assert_eq!(findings[0].rule, "safety-comment");
        prop_assert_eq!(findings[0].line, before.len() + 1);
    }

    #[test]
    fn safety_comment_keeps_silencing_through_noise(before in proptest::collection::vec(noise_line(), 0..6)) {
        let mut lines = before.clone();
        lines.push("// SAFETY: p is valid for writes by construction.".to_string());
        lines.push("fn f(p: *mut u8) { unsafe { *p = 1 } }".to_string());
        let src = lines.join("\n");
        let findings = check_file("ok.rs", &scan(&src));
        prop_assert!(findings.is_empty(), "SAFETY comment must silence the rule: {:?}", findings);
    }

    #[test]
    fn scanner_never_panics_on_arbitrary_text(s in "[ -~\n]{0,200}") {
        // Total-function property: any printable-ASCII soup (unterminated
        // strings, stray */, lone quotes) scans without panicking and
        // preserves the line count.
        let scanned = scan(&s);
        prop_assert_eq!(scanned.len(), s.matches('\n').count() + 1);
        let _ = check_file("soup.rs", &scanned);
    }
}
