//! Clean substrate crate: nothing here may trip a rule.

/// A telemetry event stub.
pub fn event(name: &str) -> usize {
    name.len()
}
