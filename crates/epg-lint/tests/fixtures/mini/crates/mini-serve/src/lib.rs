//! The serving crate's seeded violations: exactly one finding per
//! PR 10 locking rule, pinned to stable line numbers by the golden
//! test. Never compiled.

/// Long-lived serving state guarded by one lock and its condvar.
pub struct Registry {
    inner: Mutex<u32>,
    cv: Condvar,
}

/// The result store, guarded independently of the registry.
pub struct Store {
    slots: Mutex<Vec<u32>>,
}

impl Registry {
    /// Seeded `condvar-wait-loop` violation: a single-shot wait.
    pub fn pause(&self) {
        let mut inner = self.inner.lock();
        self.cv.wait(&mut inner);
    }

    /// Seeded `blocking-while-locked` violation: the traversal runs
    /// behind `recompute` while the registry lock is held.
    pub fn refresh(&self, engine: &dyn QueryEngine) {
        let mut inner = self.inner.lock();
        *inner = self.recompute(engine);
    }

    fn recompute(&self, engine: &dyn QueryEngine) -> u32 {
        engine.query(Algorithm::Bfs)
    }

    /// One half of the seeded `lock-order-cycle`: registry, then store.
    pub fn sweep(&self, store: &Store) {
        let mut inner = self.inner.lock();
        store.absorb(&mut inner);
    }

    fn note(&self) {
        let mut inner = self.inner.lock();
        *inner += 1;
    }
}

impl Store {
    fn absorb(&self, pending: &mut u32) {
        let mut slots = self.slots.lock();
        slots.push(*pending);
    }

    /// The other half of the seeded cycle: store, then registry.
    pub fn flush(&self, reg: &Registry) {
        let mut slots = self.slots.lock();
        slots.push(0);
        reg.note();
    }

    /// Seeded `guard-across-span` violation: the slot guard outlives
    /// its critical section across the pool dispatch.
    pub fn drain(&self, pool: &ThreadPool) {
        let slots = self.slots.lock();
        pool.parallel_for(slots.len(), Schedule::Static, |v| {
            let _ = v;
        });
    }
}
