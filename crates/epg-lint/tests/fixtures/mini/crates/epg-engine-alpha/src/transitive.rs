//! Transitive-rule seeds: violations visible only through the call
//! graph — each helper's token sits outside any lexical scope the
//! line-local rules report, so only the PR 10 reachability pass can
//! find it. Never compiled.

/// Drives every helper from one timed loop; each call line below is
/// the anchor of exactly one transitive finding.
pub fn deep_kernel(pool: &ThreadPool, rec: &mut Recorder, levels: &[Vec<u32>]) {
    let mut rounds = levels.len();
    while rounds > 0 {
        if pool.is_cancelled() {
            break;
        }
        let seed = pick_first(levels);
        let grown = widen(levels, seed);
        let mark = stamp(grown);
        let text = fetch_labels("labels.txt");
        rounds -= 1;
        rec.iteration((mark + text.len()) as u64);
    }
}

/// Panics outside any loop: invisible to the line-local rule, fatal
/// under the timed span above.
fn pick_first(levels: &[Vec<u32>]) -> u32 {
    levels.first().and_then(|l| l.first()).copied().unwrap()
}

/// Allocates outside any hot span: same.
fn widen(levels: &[Vec<u32>], seed: u32) -> usize {
    let owned = levels.first().map(|l| l.to_vec()).unwrap_or_default();
    owned.len() + seed as usize
}

/// Reads the clock: reported where it sits *and* at the timed call.
fn stamp(grown: usize) -> usize {
    let t0 = std::time::Instant::now();
    grown + t0.elapsed().as_nanos() as usize
}

/// Re-enters the read phase from the timed loop through `load_file`.
fn fetch_labels(path: &str) -> String {
    load_file(path)
}
