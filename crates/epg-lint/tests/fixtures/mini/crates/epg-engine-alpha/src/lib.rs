//! A deliberately broken engine crate: one seeded violation per
//! architectural rule family, pinned to stable line numbers by the
//! golden test (`tests/model_fixture.rs`). Never compiled.

/// The read phase: file I/O inside `load_file` is exempt by design.
pub fn load_file(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_default()
}

/// Seeded `phase-purity` violation: I/O reachable from algorithm code.
pub fn relabel(path: &str) -> usize {
    std::fs::read_to_string(path).map(|s| s.len()).unwrap_or(0)
}

/// Seeded `timing-discipline` violation: an engine timing itself.
pub fn self_timed() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}

/// Seeded `panic-discipline` violation: aborting inside the iteration loop.
pub fn kernel(levels: &[Vec<u32>]) -> u32 {
    let mut sum = 0;
    for level in levels {
        sum += level.first().copied().unwrap();
    }
    sum
}
