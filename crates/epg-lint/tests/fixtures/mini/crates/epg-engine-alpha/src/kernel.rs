//! Concurrency-rule seeds: exactly one violation per PR 6 rule id,
//! pinned to stable line numbers by the golden test. Never compiled.

/// A deliberately racy kernel the dataflow pass must catch four ways:
/// no poll site in the iteration loop, `SeqCst` inside it, a per-round
/// `collect`, and a direct write to captured state from a worker.
pub fn racy_kernel(pool: &ThreadPool, rec: &mut Recorder, flag: &AtomicU32, out: &mut [u32]) {
    let mut rounds = 3usize;
    while rounds > 0 {
        flag.store(1, Ordering::SeqCst);
        let scratch: Vec<u32> = (0..rounds as u32).collect();
        pool.parallel_for(out.len(), Schedule::Static, |v| {
            out[v] = scratch[v % scratch.len()];
        });
        rounds -= 1;
        rec.iteration(rounds as u64);
    }
}
