//! The measurement owner: clock reads here are the negative case for
//! `timing-discipline` — the harness owns the clock, so this file must
//! produce no finding.

/// Times one trial; legal only because this crate is a timing owner.
pub fn time_trial() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
