//! Property tests for the PR 10 call-graph layer: `CallGraph::build` is
//! a total function on arbitrary line soup and every node span and edge
//! call-line it extracts is a well-formed 1-based location inside the
//! file; the locking and transitive passes never panic on generated
//! input and anchor every finding at an in-bounds line of a real file;
//! and `find_cycle` agrees with a naive O(V·E) reachability oracle on
//! random digraphs.

use epg_lint::callgraph::{find_cycle, CallGraph};
use epg_lint::model::{CrateModel, FileModel, Workspace};
use epg_lint::scan::scan;
use proptest::prelude::*;

/// Rust-shaped fragments biased toward what the call-graph and locking
/// passes parse: fn items, struct lock fields, impl blocks, call sites
/// of every kind, guards, waits, notifies — plus torn delimiters.
fn fragment() -> impl Strategy<Value = String> {
    let ident = "[a-z_][a-z0-9_]{0,6}";
    prop_oneof![
        ident.prop_map(|n| format!("fn {n}(x: u32) -> u32 {{")),
        ident.prop_map(|n| format!("pub struct S{n} {{")),
        ident.prop_map(|n| format!("    {n}: Mutex<u32>,")),
        ident.prop_map(|n| format!("    {n}: Condvar,")),
        Just("}".to_string()),
        Just("impl Reg {".to_string()),
        ident.prop_map(|n| format!("    let g = self.{n}.lock();")),
        ident.prop_map(|n| format!("    self.{n}.wait(&mut g);")),
        ident.prop_map(|n| format!("    {n}(x);")),
        ident.prop_map(|n| format!("    self.{n}(x);")),
        ident.prop_map(|n| format!("    Reg::{n}(x);")),
        ident.prop_map(|n| format!("    engine.query({n});")),
        Just("    rec.iteration(0);".to_string()),
        Just("    if pool.is_cancelled() { break; }".to_string()),
        Just("    while x > 0 {".to_string()),
        Just("    drop(g);".to_string()),
        Just("    self.cv.notify_all();".to_string()),
        Just("    pool.parallel_for(n, s, |v| {".to_string()),
        Just("    });".to_string()),
        Just("    }".to_string()),
        Just("{{{".to_string()),
        Just("}}}".to_string()),
        Just("".to_string()),
    ]
}

/// Printable-ASCII soup: no structure guarantees at all.
fn soup_line() -> impl Strategy<Value = String> {
    "[ -~]{0,60}"
}

fn krate(name: &str, files: Vec<FileModel>) -> CrateModel {
    CrateModel {
        name: name.to_string(),
        dir: format!("crates/{name}"),
        manifest_path: format!("crates/{name}/Cargo.toml"),
        manifest_lines: Vec::new(),
        deps: Vec::new(),
        dev_deps: Vec::new(),
        files,
    }
}

/// Builds the graph and asserts every node and edge is well-formed:
/// spans 1-based and inside their file, edge targets in range, call
/// lines inside the caller's file.
fn assert_graph_well_formed(c: &CrateModel) {
    let g = CallGraph::build(c);
    assert_eq!(g.edges.len(), g.nodes.len());
    for n in &g.nodes {
        let len = c.files[n.file].lines.len().max(1);
        assert!(
            1 <= n.start && n.start <= n.end && n.end <= len,
            "node `{}` span ({}, {}) escapes file of {len} lines",
            n.name,
            n.start,
            n.end
        );
    }
    for (u, out) in g.edges.iter().enumerate() {
        for &(v, line) in out {
            assert!(v < g.nodes.len(), "edge target {v} out of range");
            assert_ne!(v, u, "self edge survived build");
            let len = c.files[g.nodes[u].file].lines.len().max(1);
            assert!(1 <= line && line <= len, "call line {line} outside caller file");
        }
    }
}

/// Runs the locking family and the transitive upgrades over generated
/// files in both a serving crate and an engine crate, and asserts every
/// finding anchors at an in-bounds 1-based line of a file that exists.
fn passes_never_panic_and_anchor_in_bounds(src: &str) {
    for name in ["epg-serve", "epg-engine-gap"] {
        let files = vec![
            FileModel::build(format!("crates/{name}/src/a.rs"), scan(src), false),
            FileModel::build(format!("crates/{name}/src/b.rs"), scan(src), false),
        ];
        let lens: Vec<(String, usize)> =
            files.iter().map(|f| (f.path.clone(), f.lines.len().max(1))).collect();
        let c = krate(name, files);
        assert_graph_well_formed(&c);
        let ws = Workspace { crates: vec![c] };
        let mut out = Vec::new();
        epg_lint::locking::check(&ws, &mut out);
        epg_lint::callgraph::check_transitive(&ws, &mut out);
        for f in out {
            let len = lens
                .iter()
                .find(|(p, _)| *p == f.file)
                .map(|&(_, l)| l)
                .unwrap_or_else(|| panic!("finding names unknown file {}", f.file));
            assert!(1 <= f.line && f.line <= len, "finding out of bounds: {f}");
        }
    }
}

/// O(V·E) oracle: a digraph has a cycle iff some edge `(u, v)` closes a
/// path — `u` is reachable from `v`.
fn naive_has_cycle(n: usize, edges: &[(usize, usize)]) -> bool {
    let reaches = |from: usize, to: usize| {
        let mut seen = vec![false; n];
        let mut stack = vec![from];
        while let Some(u) = stack.pop() {
            if u == to {
                return true;
            }
            if seen[u] {
                continue;
            }
            seen[u] = true;
            for &(a, b) in edges {
                if a == u && !seen[b] {
                    stack.push(b);
                }
            }
        }
        false
    };
    edges.iter().any(|&(u, v)| reaches(v, u))
}

/// Random digraphs: a node count and an edge list within it.
fn digraph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (1usize..10).prop_flat_map(|n| (Just(n), proptest::collection::vec((0..n, 0..n), 0..24)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn structured_fragments_build_a_well_formed_graph(
        lines in proptest::collection::vec(fragment(), 1..40),
    ) {
        passes_never_panic_and_anchor_in_bounds(&lines.join("\n"));
    }

    #[test]
    fn arbitrary_soup_builds_a_well_formed_graph(
        lines in proptest::collection::vec(soup_line(), 1..40),
    ) {
        passes_never_panic_and_anchor_in_bounds(&lines.join("\n"));
    }

    #[test]
    fn find_cycle_agrees_with_the_naive_oracle((n, edges) in digraph()) {
        let got = find_cycle(n, &edges);
        prop_assert_eq!(
            got.is_some(),
            naive_has_cycle(n, &edges),
            "cycle existence diverges on n={} edges={:?}",
            n,
            edges
        );
        if let Some(cycle) = got {
            // The reported node sequence must be a real cycle: every
            // consecutive pair (wrapping) is an input edge, nodes are
            // distinct, and the rotation starts at the smallest node.
            prop_assert!(!cycle.is_empty());
            for (i, &a) in cycle.iter().enumerate() {
                let b = cycle[(i + 1) % cycle.len()];
                prop_assert!(edges.contains(&(a, b)), "missing edge ({a}, {b}) in {cycle:?}");
            }
            let mut sorted = cycle.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), cycle.len(), "repeated node in cycle");
            prop_assert_eq!(cycle[0], *cycle.iter().min().unwrap());
        }
    }
}
