//! Tier-1 gate: the workspace must be lint-clean. A new `unsafe` without a
//! SAFETY comment, an escaped `unsafe impl Sync`, or a bad CAS ordering
//! anywhere in the tree fails `cargo test` here, not just the standalone
//! `cargo run -p epg-lint` pass.

#[test]
fn workspace_is_lint_clean() {
    let root = epg_lint::workspace_root();
    let findings = epg_lint::lint_tree(&root).expect("allowlist must parse");
    assert!(
        findings.is_empty(),
        "epg-lint found {} violation(s):\n{}",
        findings.len(),
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
