//! Tier-1 gate: the workspace must be clean under the FULL analysis — the
//! line rules plus all architectural families (layering, phase-purity,
//! timing-discipline, panic-discipline, concurrency) — and the allowlist
//! must carry no stale entries. A new `unsafe` without a SAFETY comment,
//! an engine reaching into the harness, an engine timing itself, a racy
//! worker-closure capture, or a paid-off exception left in
//! `epg-lint.toml` fails `cargo test` here, not just the standalone
//! `cargo run -p epg-lint` pass.
//!
//! The second test closes the vacuity hole in `cancellation-coverage`:
//! "no findings" also holds when the pass finds no iteration loops at
//! all, so it positively asserts that every one of the five engines has
//! at least one recognized iteration loop, and that each one polls.

#[test]
fn workspace_is_lint_clean() {
    let root = epg_lint::workspace_root();
    let report = epg_lint::lint_workspace(&root).expect("allowlist must parse");
    assert!(
        report.findings.is_empty(),
        "epg-lint found {} violation(s):\n{}",
        report.findings.len(),
        report.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale epg-lint.toml entries (silence nothing; delete them):\n{:#?}",
        report.stale_allows
    );
}

#[test]
fn every_engine_has_polled_iteration_loops() {
    let ws = epg_lint::model::Workspace::load(&epg_lint::workspace_root());
    let engines = ["gap", "graph500", "graphbig", "graphmat", "powergraph"];
    for engine in engines {
        let name = format!("epg-engine-{engine}");
        let c =
            ws.crates.iter().find(|c| c.name == name).unwrap_or_else(|| {
                panic!("engine crate `{name}` missing from the workspace model")
            });
        let mut loops = 0;
        for f in c.files.iter().filter(|f| !f.test_role) {
            let polls = f.token_lines("is_cancelled");
            for (s, e) in epg_lint::flow::iteration_loops(f) {
                if f.in_test(s) {
                    continue;
                }
                loops += 1;
                assert!(
                    polls.iter().any(|&l| s <= l && l <= e),
                    "{}:{s}: iteration loop without an is_cancelled() poll site",
                    f.path
                );
            }
        }
        assert!(
            loops > 0,
            "`{name}` has no recognized iteration loops — cancellation-coverage \
             would pass vacuously; did the rec.iteration convention change?"
        );
    }
}
