//! Tier-1 gate: the workspace must be clean under the FULL analysis — the
//! line rules plus all four architectural families (layering, phase-purity,
//! timing-discipline, panic-discipline) — and the allowlist must carry no
//! stale entries. A new `unsafe` without a SAFETY comment, an engine
//! reaching into the harness, an engine timing itself, or a paid-off
//! exception left in `epg-lint.toml` fails `cargo test` here, not just the
//! standalone `cargo run -p epg-lint` pass.

#[test]
fn workspace_is_lint_clean() {
    let root = epg_lint::workspace_root();
    let report = epg_lint::lint_workspace(&root).expect("allowlist must parse");
    assert!(
        report.findings.is_empty(),
        "epg-lint found {} violation(s):\n{}",
        report.findings.len(),
        report.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale epg-lint.toml entries (silence nothing; delete them):\n{:#?}",
        report.stale_allows
    );
}
