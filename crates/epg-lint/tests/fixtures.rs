//! The lint must flag every planted violation in `fixtures/` — with the
//! right rule at the right `file:line` — and nothing else. This is the
//! positive half of the acceptance criteria; `workspace_clean.rs` is the
//! negative half.

use std::path::Path;

#[test]
fn fixtures_trip_every_rule() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let findings = epg_lint::lint_tree(&dir).expect("no allowlist in fixtures");
    let got: Vec<(String, usize, &str)> =
        findings.iter().map(|f| (f.file.clone(), f.line, f.rule)).collect();
    let want = [
        ("violations.rs".to_string(), 9, "static-mut"),
        ("violations.rs".to_string(), 12, "raw-ptr-field"),
        ("violations.rs".to_string(), 15, "raw-ptr-field"),
        ("violations.rs".to_string(), 18, "safety-comment"),
        ("violations.rs".to_string(), 18, "unsafe-impl"),
        ("violations.rs".to_string(), 21, "safety-comment"),
        ("violations.rs".to_string(), 25, "cas-ordering"),
    ];
    let mut got_sorted = got.clone();
    got_sorted.sort();
    let mut want_sorted = want.to_vec();
    want_sorted.sort();
    assert_eq!(
        got_sorted, want_sorted,
        "findings diverge from the planted violations:\n{findings:#?}"
    );
}

#[test]
fn lint_tree_rejects_broken_allowlists() {
    let dir = std::env::temp_dir().join("epg-lint-badallow-test");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("epg-lint.toml"), "[[allow]]\nfile = \"x.rs\"\n").unwrap();
    let err = epg_lint::lint_tree(&dir).unwrap_err();
    assert!(err.contains("needs a rule") || err.contains("reason"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
