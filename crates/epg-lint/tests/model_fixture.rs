//! The mini fixture workspace (`tests/fixtures/mini/`) must produce
//! exactly one finding per architectural rule — layering, phase-purity,
//! timing-discipline, panic-discipline, the four concurrency rules
//! seeded in `kernel.rs`, the four locking rules seeded in the
//! `mini-serve` crate, and one *transitive* finding per upgraded family
//! seeded in `transitive.rs` (violations a line-local pass cannot see)
//! — at pinned `file:line` positions, and the `--json` rendering must
//! match the committed golden report byte for byte.
//!
//! The fixture also carries the negative cases: I/O inside
//! `load_file` and a clock read inside the (fixture) `epg-harness`
//! crate, both of which must stay silent.

use std::path::{Path, PathBuf};

fn mini_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini")
}

#[test]
fn mini_workspace_trips_each_family_once() {
    let report = epg_lint::lint_workspace(&mini_root()).expect("mini fixture has no allowlist");
    let got: Vec<(String, usize, &str)> =
        report.findings.iter().map(|f| (f.file.clone(), f.line, f.rule)).collect();
    let want = [
        ("crates/epg-engine-alpha/Cargo.toml".to_string(), 8, "layering"),
        ("crates/epg-engine-alpha/src/kernel.rs".to_string(), 9, "cancellation-coverage"),
        ("crates/epg-engine-alpha/src/kernel.rs".to_string(), 10, "atomic-ordering"),
        ("crates/epg-engine-alpha/src/kernel.rs".to_string(), 11, "hot-loop-alloc"),
        ("crates/epg-engine-alpha/src/kernel.rs".to_string(), 13, "shared-mutable-capture"),
        ("crates/epg-engine-alpha/src/lib.rs".to_string(), 12, "phase-purity"),
        ("crates/epg-engine-alpha/src/lib.rs".to_string(), 17, "timing-discipline"),
        ("crates/epg-engine-alpha/src/lib.rs".to_string(), 25, "panic-discipline"),
        // Transitive upgrades: each helper's token is outside any lexical
        // scope the line-local rules report, so these four exist only
        // because reachability from the timed loop is checked.
        ("crates/epg-engine-alpha/src/transitive.rs".to_string(), 14, "panic-discipline"),
        ("crates/epg-engine-alpha/src/transitive.rs".to_string(), 15, "hot-loop-alloc"),
        ("crates/epg-engine-alpha/src/transitive.rs".to_string(), 16, "timing-discipline"),
        ("crates/epg-engine-alpha/src/transitive.rs".to_string(), 17, "phase-purity"),
        // The clock read itself is also reported where it sits.
        ("crates/epg-engine-alpha/src/transitive.rs".to_string(), 37, "timing-discipline"),
        ("crates/mini-serve/src/lib.rs".to_string(), 20, "condvar-wait-loop"),
        ("crates/mini-serve/src/lib.rs".to_string(), 27, "blocking-while-locked"),
        ("crates/mini-serve/src/lib.rs".to_string(), 37, "lock-order-cycle"),
        ("crates/mini-serve/src/lib.rs".to_string(), 63, "guard-across-span"),
    ];
    assert_eq!(got, want, "seeded violations diverge:\n{:#?}", report.findings);
    assert!(report.stale_allows.is_empty());
}

#[test]
fn mini_json_matches_golden() {
    let report = epg_lint::lint_workspace(&mini_root()).expect("mini fixture has no allowlist");
    let json = epg_lint::output::to_json(&report.findings, &report.stale_allows, &[]);
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini_golden.json");
    let golden = std::fs::read_to_string(&golden_path).expect("golden file committed");
    assert_eq!(
        json, golden,
        "JSON report drifted from the golden file; regenerate with \
         `cargo run -p epg-lint -- crates/epg-lint/tests/fixtures/mini --json`"
    );
}

#[test]
fn mini_findings_round_trip_as_a_baseline() {
    // The human output of one run is a valid baseline for the next: with
    // every finding grandfathered, the fixture lints clean and nothing is
    // stale.
    let report = epg_lint::lint_workspace(&mini_root()).expect("mini fixture has no allowlist");
    let text: String = report.findings.iter().map(|f| format!("{f}\n")).collect();
    let baseline = epg_lint::output::parse_baseline(&text).expect("own output must parse");
    let (kept, stale) = epg_lint::output::apply_baseline(report.findings, &baseline);
    assert!(kept.is_empty(), "baselined findings resurfaced: {kept:#?}");
    assert!(stale.is_empty(), "fresh baseline cannot be stale: {stale:#?}");
}
