//! Property tests for the token-model span extraction: on generated
//! line soup — both structured Rust-shaped fragments and arbitrary
//! printable noise with unbalanced delimiters — `FileModel::build` is a
//! total function, and every span it extracts (fn bodies, `#[cfg(test)]`
//! regions, loop bodies, worker-closure arg lists) is a well-formed
//! 1-based inclusive range inside the file. The flow pass is span
//! arithmetic over this model, so these bounds are what keep the
//! concurrency rules panic-free on any input tree.

use epg_lint::flow;
use epg_lint::model::FileModel;
use epg_lint::scan::scan;
use proptest::prelude::*;

/// Rust-shaped fragments: the constructs the model extracts spans from,
/// deliberately including torn/unbalanced variants.
fn fragment() -> impl Strategy<Value = String> {
    let ident = "[a-z_][a-z0-9_]{0,6}";
    prop_oneof![
        ident.prop_map(|n| format!("fn {n}(x: u32) -> u32 {{")),
        ident.prop_map(|n| format!("    let mut {n} = Vec::new();")),
        ident.prop_map(|n| format!("    for {n} in 0..10 {{")),
        Just("    while x > 0 {".to_string()),
        Just("    loop {".to_string()),
        ident.prop_map(|n| format!("    pool.parallel_for({n}.len(), s, |v| {{")),
        ident
            .prop_map(|n| format!("    pool.parallel_for_ranges(n, s, |w, lo, hi| {{ {n}(w) }});")),
        ident.prop_map(|n| format!("        {n}[v] = 1;")),
        ident.prop_map(|n| format!("        {n} += 1;")),
        Just("        rec.iteration(0);".to_string()),
        Just("        if pool.is_cancelled() { break; }".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("mod tests {".to_string()),
        Just("#[test]".to_string()),
        Just("    }".to_string()),
        Just("}".to_string()),
        Just("}}}".to_string()),
        Just("{{{".to_string()),
        Just("    });".to_string()),
        Just("impl Iterator for X {".to_string()),
        Just("    let f = |a: (u32, u32), b| a.0 | b;".to_string()),
        Just("".to_string()),
    ]
}

/// Printable-ASCII soup: no structure guarantees at all.
fn soup_line() -> impl Strategy<Value = String> {
    "[ -~]{0,60}"
}

/// Asserts every extracted span is 1-based, ordered, and inside the file.
fn assert_spans_well_formed(f: &FileModel) {
    let n = f.lines.len();
    let check = |what: &str, s: usize, e: usize| {
        assert!(
            1 <= s && s <= e && e <= n.max(1),
            "{what} span ({s}, {e}) escapes file of {n} lines: {:?}",
            f.path
        );
    };
    for fun in &f.fns {
        check("fn", fun.start, fun.end);
    }
    for &(s, e) in &f.test_spans {
        check("test", s, e);
    }
    for &(s, e) in &f.loops {
        check("loop", s, e);
    }
    for &(s, e) in &f.par_calls {
        check("par-call", s, e);
    }
    for line in f.par_entry_lines() {
        assert!(1 <= line && line <= n.max(1), "par-entry line {line} out of bounds");
    }
}

/// Runs the full concurrency family over one in-memory file in an engine
/// crate — the total-function property for the dataflow pass itself.
fn flow_never_panics(f: FileModel) {
    let c = epg_lint::model::CrateModel {
        name: "epg-engine-gap".to_string(),
        dir: "crates/epg-engine-gap".to_string(),
        manifest_path: "crates/epg-engine-gap/Cargo.toml".to_string(),
        manifest_lines: Vec::new(),
        deps: Vec::new(),
        dev_deps: Vec::new(),
        files: vec![f],
    };
    let ws = epg_lint::model::Workspace { crates: vec![c] };
    let mut out = Vec::new();
    flow::check(&ws, &mut out);
    for finding in out {
        assert!(finding.line >= 1, "finding at line 0: {finding}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn structured_fragments_build_well_formed_spans(
        lines in proptest::collection::vec(fragment(), 1..40),
    ) {
        let src = lines.join("\n");
        let f = FileModel::build("crates/epg-engine-gap/src/x.rs".to_string(), scan(&src), false);
        prop_assert_eq!(f.lines.len(), lines.len());
        assert_spans_well_formed(&f);
        flow_never_panics(f);
    }

    #[test]
    fn arbitrary_soup_builds_well_formed_spans(
        lines in proptest::collection::vec(soup_line(), 1..40),
    ) {
        let src = lines.join("\n");
        let f = FileModel::build("crates/epg-engine-gap/src/x.rs".to_string(), scan(&src), false);
        prop_assert_eq!(f.lines.len(), lines.len());
        assert_spans_well_formed(&f);
        flow_never_panics(f);
    }

    #[test]
    fn unterminated_constructs_clamp_to_file_end(tail in "[a-z]{1,8}") {
        // A loop/closure/test region opened on the last line must clamp its
        // span to the end of the file, not run past it.
        for src in [
            format!("fn {tail}() {{\n    loop {{\n        x += 1;"),
            format!("pool.parallel_for(n, s, |{tail}| {{"),
            "#[cfg(test)]\nmod tests {".to_string(),
        ] {
            let f = FileModel::build("crates/epg-engine-gap/src/x.rs".to_string(), scan(&src), false);
            assert_spans_well_formed(&f);
            flow_never_panics(f);
        }
    }

    #[test]
    fn test_spans_nest_inside_the_file_and_shield_rules(
        body in proptest::collection::vec(fragment(), 0..10),
    ) {
        // Anything inside #[cfg(test)] is invisible to the concurrency
        // family, no matter how violation-shaped it is.
        let mut lines = vec!["#[cfg(test)]".to_string(), "mod tests {".to_string()];
        lines.push("    fn t(pool: &P, out: &mut [u32]) {".to_string());
        lines.push("        pool.parallel_for(8, s, |v| { out[v] = 1; });".to_string());
        lines.extend(body.clone());
        lines.push("}".to_string());
        let src = lines.join("\n");
        let f = FileModel::build("crates/epg-engine-gap/src/x.rs".to_string(), scan(&src), false);
        assert_spans_well_formed(&f);
        prop_assert!(f.in_test(4), "the seeded violation line must be in a test span");
        flow_never_panics(f);
    }
}
