// Deliberate violations of every epg-lint rule. This file is NOT compiled
// (it sits outside src/ and the walker skips `fixtures` directories); the
// integration test lints this directory explicitly and asserts each rule
// fires with the right file:line.
// Line numbers below are load-bearing — tests/fixtures.rs asserts them.

use std::sync::atomic::{AtomicU32, Ordering};

static mut GLOBAL: u32 = 0; // line 9: static-mut

struct BadCell {
    ptr: *mut f64, // line 12: raw-ptr-field
}

struct BadTuple(*const u8); // line 15: raw-ptr-field

// Deliberately left without a justification comment.
unsafe impl Sync for BadCell {} // line 18: unsafe-impl (and safety-comment)

fn no_safety_comment(p: *mut u8) {
    unsafe { *p = 1 }; // line 21: safety-comment
}

fn bad_cas(a: &AtomicU32) {
    let _ = a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::SeqCst); // line 25: cas-ordering
}

fn fooled_by_nothing() {
    // These must NOT fire: the keywords live in strings and comments.
    let _s = "unsafe { static mut } compare_exchange";
    let _r = r#"unsafe impl Sync for Nothing"#;
    // unsafe in a comment is fine; so is /* static mut */ here.
}
