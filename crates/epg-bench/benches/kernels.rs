//! Criterion benchmarks of the algorithm kernels across engines — the
//! timing-shaped core of Figs. 2-4 as statistically-sound criterion
//! measurements (complementing the one-shot regenerator binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epg::prelude::*;
use std::hint::black_box;

fn dataset() -> Dataset {
    Dataset::from_spec(&GraphSpec::Kronecker { scale: 11, edge_factor: 16, weighted: true }, 7)
}

fn bench_bfs(c: &mut Criterion) {
    let ds = dataset();
    let pool = ThreadPool::new(2);
    let root = ds.roots[0];
    let mut g = c.benchmark_group("bfs");
    g.throughput(Throughput::Elements(ds.symmetric.num_edges() as u64));
    for kind in [EngineKind::Gap, EngineKind::Graph500, EngineKind::GraphBig, EngineKind::GraphMat]
    {
        let mut e = kind.create();
        e.load_edge_list(ds.edges_for(kind));
        e.construct(&pool);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &root, |b, &r| {
            b.iter(|| black_box(e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(r)))))
        });
    }
    g.finish();
}

fn bench_sssp(c: &mut Criterion) {
    let ds = dataset();
    let pool = ThreadPool::new(2);
    let root = ds.roots[0];
    let mut g = c.benchmark_group("sssp");
    g.throughput(Throughput::Elements(ds.symmetric.num_edges() as u64));
    for kind in
        [EngineKind::Gap, EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph]
    {
        let mut e = kind.create();
        e.load_edge_list(ds.edges_for(kind));
        e.construct(&pool);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &root, |b, &r| {
            b.iter(|| black_box(e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(r)))))
        });
    }
    g.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let ds = dataset();
    let pool = ThreadPool::new(2);
    let mut g = c.benchmark_group("pagerank");
    g.sample_size(10);
    for kind in
        [EngineKind::Gap, EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph]
    {
        let mut e = kind.create();
        e.load_edge_list(ds.edges_for(kind));
        e.construct(&pool);
        g.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut p = RunParams::new(&pool, None);
                p.stopping = Some(StoppingCriterion::paper_default());
                black_box(e.run(Algorithm::PageRank, &p))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bfs, bench_sssp, bench_pagerank
}
criterion_main!(benches);
