//! Criterion benchmarks for the zero-copy parallel ingest pipeline:
//! SNAP text parse, binary decode, CSR build/transpose/sort — serial
//! oracle vs the chunked parallel implementations at 1/2/4 threads.
//!
//! `epg bench --json` produces the machine-readable medians for the
//! committed trajectory file; these criterion benches are for local,
//! statistically-rigorous A/B work on the same phases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epg::graph::{ingest, snap};
use epg::prelude::*;
use std::hint::black_box;

const THREADS: [usize; 3] = [1, 2, 4];

fn workload() -> EdgeList {
    epg::generator::GraphSpec::Kronecker { scale: 12, edge_factor: 8, weighted: true }
        .generate(7)
        .deduplicated()
}

fn bench_snap_parse(c: &mut Criterion) {
    let el = workload();
    let mut text = Vec::new();
    snap::write_snap(&el, "bench", &mut text).unwrap();
    let mut g = c.benchmark_group("ingest_snap_parse");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("serial", |b| b.iter(|| black_box(snap::parse_snap(&text[..]).unwrap())));
    for t in THREADS {
        let pool = ThreadPool::new(t);
        g.bench_with_input(BenchmarkId::new("parallel", t), &t, |b, _| {
            b.iter(|| black_box(ingest::parse_snap_parallel(&text, &pool).unwrap()))
        });
    }
    g.finish();
}

fn bench_binary_codec(c: &mut Criterion) {
    let el = workload();
    let mut bin = Vec::new();
    snap::write_binary(&el, &mut bin).unwrap();
    let mut g = c.benchmark_group("ingest_binary");
    g.throughput(Throughput::Bytes(bin.len() as u64));
    g.bench_function("decode_serial", |b| {
        b.iter(|| black_box(snap::read_binary(&bin[..]).unwrap()))
    });
    for t in THREADS {
        let pool = ThreadPool::new(t);
        g.bench_with_input(BenchmarkId::new("decode_parallel", t), &t, |b, _| {
            b.iter(|| black_box(ingest::decode_binary_parallel(&bin, &pool).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("encode_parallel", t), &t, |b, _| {
            b.iter(|| black_box(ingest::encode_binary_parallel(&el, &pool)))
        });
    }
    g.finish();
}

fn bench_csr_phases(c: &mut Criterion) {
    let el = workload();
    let csr = Csr::from_edge_list(&el);
    let mut g = c.benchmark_group("ingest_csr");
    g.throughput(Throughput::Elements(el.num_edges() as u64));
    g.bench_function("build_serial", |b| b.iter(|| black_box(Csr::from_edge_list(&el))));
    g.bench_function("transpose_serial", |b| b.iter(|| black_box(csr.transpose())));
    g.bench_function("sort_serial", |b| {
        b.iter(|| {
            let mut x = csr.clone();
            x.sort_adjacency();
            black_box(x)
        })
    });
    for t in THREADS {
        let pool = ThreadPool::new(t);
        g.bench_with_input(BenchmarkId::new("build_parallel", t), &t, |b, _| {
            b.iter(|| black_box(Csr::from_edge_list_parallel(&el, &pool)))
        });
        g.bench_with_input(BenchmarkId::new("transpose_parallel", t), &t, |b, _| {
            b.iter(|| black_box(csr.transpose_parallel(&pool)))
        });
        g.bench_with_input(BenchmarkId::new("sort_parallel", t), &t, |b, _| {
            b.iter(|| {
                let mut x = csr.clone();
                x.sort_adjacency_parallel(&pool);
                black_box(x)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_snap_parse, bench_binary_codec, bench_csr_phases);
criterion_main!(benches);
