//! Criterion micro-benchmarks for the substrates: generation, construction,
//! the parallel runtime's dispatch overhead, SpMV iterations, and
//! vertex-cut partitioning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epg::graphmat::{program::GraphProgram, spmv};
use epg::powergraph::partition::PartitionedGraph;
use epg::prelude::*;
use std::hint::black_box;

fn kron(scale: u32) -> EdgeList {
    epg::generator::kronecker::generate(
        &epg::generator::kronecker::KroneckerConfig {
            scale,
            edge_factor: 16,
            ..Default::default()
        },
        7,
    )
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate");
    for scale in [10u32, 12] {
        let edges = (1u64 << scale) * 16;
        g.throughput(Throughput::Elements(edges));
        g.bench_with_input(BenchmarkId::new("kronecker", scale), &scale, |b, &s| {
            b.iter(|| black_box(kron(s)))
        });
    }
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    let el = kron(12).symmetrized().deduplicated();
    let mut g = c.benchmark_group("construct");
    g.throughput(Throughput::Elements(el.num_edges() as u64));
    g.bench_function("csr", |b| b.iter(|| black_box(Csr::from_edge_list(&el))));
    g.bench_function("dcsc", |b| b.iter(|| black_box(epg::graph::Dcsc::from_edge_list(&el))));
    g.bench_function("property_graph", |b| {
        b.iter(|| black_box(epg::graph::adjacency::PropertyGraph::from_edge_list(&el)))
    });
    g.bench_function("vertex_cut_8", |b| b.iter(|| black_box(PartitionedGraph::build(&el, 8))));
    g.finish();
}

fn bench_parallel_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_runtime");
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::new(threads);
        g.bench_with_input(BenchmarkId::new("region_dispatch", threads), &threads, |b, _| {
            b.iter(|| {
                pool.region(|tid| {
                    black_box(tid);
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("parallel_for_1e5", threads), &threads, |b, _| {
            b.iter(|| {
                pool.parallel_for_ranges(
                    100_000,
                    Schedule::Guided { min_chunk: 64 },
                    |_t, lo, hi| {
                        let mut s = 0u64;
                        for i in lo..hi {
                            s = s.wrapping_add(i as u64);
                        }
                        black_box(s);
                    },
                )
            })
        });
    }
    g.finish();
}

struct MinPlus;
impl GraphProgram for MinPlus {
    type VertexValue = f32;
    type Message = f32;
    type Accum = f32;
    fn send(&self, _v: VertexId, value: &f32) -> f32 {
        *value
    }
    fn process(&self, msg: &f32, w: f32, _dst: VertexId) -> f32 {
        msg + w
    }
    fn reduce(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }
    fn apply(&self, acc: f32, _v: VertexId, value: &mut f32) -> bool {
        if acc < *value {
            *value = acc;
            true
        } else {
            false
        }
    }
}

fn bench_spmv(c: &mut Criterion) {
    let el = kron(11).symmetrized().deduplicated();
    let m = epg::graph::Dcsc::from_edge_list(&el);
    let pool = ThreadPool::new(2);
    let active: Vec<VertexId> = (0..el.num_vertices as VertexId).collect();
    let mut g = c.benchmark_group("spmv");
    g.throughput(Throughput::Elements(m.nnz() as u64));
    g.bench_function("all_active_iteration", |b| {
        b.iter(|| {
            let mut vals = vec![1.0f32; el.num_vertices];
            black_box(spmv::run_iteration(&MinPlus, &[&m], &active, &mut vals, &pool))
        })
    });
    g.finish();
}

fn bench_trace_jsonl(c: &mut Criterion) {
    use epg::trace::{jsonl, Dir, TraceEvent};
    let events: Vec<TraceEvent> = (0..1000u64)
        .map(|i| match i % 3 {
            0 => TraceEvent::Region { work: i * 17, span: 5, bytes: i * 96, parallel: true },
            1 => TraceEvent::CountersDelta {
                region: "iteration".into(),
                edges: i,
                vertices: 3,
                bytes_read: 0,
                bytes_written: 0,
                iterations: 1,
            },
            _ => TraceEvent::Iteration { iter: i as u32, frontier: 100 + i, dir: Dir::Push },
        })
        .collect();
    let text = jsonl::render_jsonl(&events);
    let mut g = c.benchmark_group("trace_jsonl");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("render_1000", |b| b.iter(|| black_box(jsonl::render_jsonl(&events))));
    g.bench_function("parse_1000", |b| b.iter(|| black_box(jsonl::parse_jsonl(&text))));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation, bench_construction, bench_parallel_runtime, bench_spmv,
        bench_trace_jsonl
}
criterion_main!(benches);
