//! Fig. 1 regenerator: the framework-overview diagram. Each cyan box of
//! the paper's figure is one shell script of the original (one `epg`
//! subcommand / pipeline method here); the green ellipses are generated
//! files. Rendered as SVG from the live pipeline structure.

use epg_bench::BenchArgs;
use std::fmt::Write as _;

struct Box_ {
    x: f64,
    y: f64,
    label: &'static str,
    sub: &'static str,
}

struct File_ {
    x: f64,
    y: f64,
    label: &'static str,
}

fn main() {
    let args = BenchArgs::parse();
    let boxes = [
        Box_ { x: 40.0, y: 60.0, label: "1. setup", sub: "engine registry" },
        Box_ { x: 240.0, y: 60.0, label: "2. gen", sub: "dataset homogenizer" },
        Box_ { x: 440.0, y: 60.0, label: "3. run", sub: "experiment runner" },
        Box_ { x: 440.0, y: 220.0, label: "4. parse", sub: "log -> CSV" },
        Box_ { x: 240.0, y: 220.0, label: "5. analyze", sub: "stats + SVG plots" },
    ];
    let files = [
        File_ { x: 340.0, y: 150.0, label: "*.snap / *.bin" },
        File_ { x: 560.0, y: 150.0, label: "engine logs" },
        File_ { x: 560.0, y: 300.0, label: "results.csv" },
        File_ { x: 240.0, y: 320.0, label: "plots/*.svg" },
        File_ { x: 80.0, y: 300.0, label: "summary.txt" },
    ];
    let mut svg = String::from(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"720\" height=\"400\" \
         font-family=\"sans-serif\" font-size=\"13\">\n\
         <rect width=\"720\" height=\"400\" fill=\"white\"/>\n\
         <text x=\"360\" y=\"28\" text-anchor=\"middle\" font-size=\"17\">\
         easy-parallel-graph-rs pipeline (paper Fig. 1)</text>\n",
    );
    for b in &boxes {
        let _ = write!(
            svg,
            "<rect x=\"{}\" y=\"{}\" width=\"150\" height=\"56\" rx=\"6\" \
             fill=\"paleturquoise\" stroke=\"black\"/>\n\
             <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-weight=\"bold\">{}</text>\n\
             <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"11\">{}</text>\n",
            b.x,
            b.y,
            b.x + 75.0,
            b.y + 24.0,
            b.label,
            b.x + 75.0,
            b.y + 42.0,
            b.sub
        );
    }
    for f in &files {
        let _ = write!(
            svg,
            "<ellipse cx=\"{}\" cy=\"{}\" rx=\"70\" ry=\"20\" fill=\"palegreen\" \
             stroke=\"black\"/>\n\
             <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"11\">{}</text>\n",
            f.x,
            f.y,
            f.x,
            f.y + 4.0,
            f.label
        );
    }
    // Flow arrows between consecutive phases.
    let arrows = [
        (190.0, 88.0, 240.0, 88.0),
        (390.0, 88.0, 440.0, 88.0),
        (515.0, 116.0, 515.0, 220.0),
        (440.0, 248.0, 390.0, 248.0),
    ];
    svg.push_str(
        "<defs><marker id=\"a\" markerWidth=\"8\" markerHeight=\"8\" refX=\"6\" refY=\"3\" \
         orient=\"auto\"><path d=\"M0,0 L6,3 L0,6 z\"/></marker></defs>\n",
    );
    for (x1, y1, x2, y2) in arrows {
        let _ = writeln!(
            svg,
            "<line x1=\"{x1}\" y1=\"{y1}\" x2=\"{x2}\" y2=\"{y2}\" stroke=\"black\" \
             stroke-width=\"1.5\" marker-end=\"url(#a)\"/>"
        );
    }
    svg.push_str("</svg>\n");
    args.write_artifact("fig1_pipeline.svg", &svg);
    println!(
        "Fig. 1 (pipeline overview) written. Each cyan box = one `epg` \
         subcommand;\ngreen ellipses = generated files. See README \
         'Architecture' for the crate map."
    );
}
