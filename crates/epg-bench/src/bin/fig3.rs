//! Fig. 3 regenerator: SSSP kernel-time box plots from the same 32 roots
//! as Fig. 2 (GAP, GraphBIG, GraphMat, PowerGraph) and construction times
//! (GAP, GraphMat only — "Both PowerGraph and GraphBIG construct their
//! data structures at the same time as they read the file").
//!
//! Paper setting: weighted Kronecker scale 22, 32 threads.

use epg::harness::plot::{boxplot, Scale};
use epg::harness::stats::Summary;
use epg::prelude::*;
use epg_bench::{kron_dataset, shape_row, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let scale = args.kron_scale(22, 13);
    eprintln!("fig3: SSSP times + construction, weighted Kronecker scale {scale}");
    let ds = kron_dataset(scale, true, args.seed);
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Sssp],
        threads: args.threads,
        max_roots: Some(args.roots),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let model = MachineModel::paper_machine();

    println!("== Fig. 3 (left): SSSP time over {} roots ==", args.roots);
    let mut groups = Vec::new();
    for kind in
        [EngineKind::Gap, EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph]
    {
        let times = result.run_times(kind, Algorithm::Sssp);
        let s = Summary::of(&times);
        let projected: Vec<f64> = result
            .runs
            .iter()
            .filter(|r| r.engine == kind)
            .map(|r| {
                let rate = model.calibrate_rate(&r.output.trace, r.seconds.max(1e-9));
                model.project(&r.output.trace, rate, 32).total_s
            })
            .collect();
        println!("{}", shape_row(kind.name(), None, epg_bench::mean(&projected), "s/root"));
        println!(
            "    local measurement: median {:.5}s  [{:.5}, {:.5}]  n={}",
            s.median, s.min, s.max, s.n
        );
        groups.push((kind.name().to_string(), Summary::of(&projected)));
    }
    // Graph500 has no SSSP — it must be absent.
    assert!(result.run_times(EngineKind::Graph500, Algorithm::Sssp).is_empty());
    args.write_artifact(
        "fig3_sssp_time.svg",
        &boxplot("SSSP Time (projected, 32 threads)", "Time (seconds)", &groups, Scale::Log),
    );

    println!("\n== Fig. 3 (right): SSSP data structure construction ==");
    let mut groups = Vec::new();
    for kind in [EngineKind::Gap, EngineKind::GraphMat] {
        let times = result.construct_times(kind);
        println!("{}", shape_row(kind.name(), None, epg_bench::mean(&times), "s"));
        groups.push((kind.name().to_string(), Summary::of(&times)));
    }
    println!("GraphBIG, PowerGraph: omitted — construction fused with file read");
    args.write_artifact(
        "fig3_construction.svg",
        &boxplot("SSSP Data Structure Construction", "Time (seconds)", &groups, Scale::Log),
    );

    // Paper shape: "GAP is the clear winner" — lowest median kernel time.
    let gap_med = Summary::of(&result.run_times(EngineKind::Gap, Algorithm::Sssp)).median;
    for kind in [EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph] {
        let med = Summary::of(&result.run_times(kind, Algorithm::Sssp)).median;
        println!(
            "shape: GAP median {:.5}s vs {} {:.5}s -> GAP {}",
            gap_med,
            kind.name(),
            med,
            if gap_med <= med { "wins" } else { "LOSES (shape deviation)" }
        );
    }
}
