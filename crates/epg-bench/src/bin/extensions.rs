//! §V extensions in action: betweenness centrality and triangle counting
//! across every engine that implements them, plus GAP's heuristic
//! parameter auto-tuning — the three concrete items the paper lists as
//! future work ("algorithms like triangle counting and betweenness
//! centrality are widely implemented but not supported by either
//! Graphalytics nor easy-parallel-graph-*"; "we plan to add some level of
//! heuristic parameter tuning").

use epg::gap::GapEngine;
use epg::prelude::*;
use epg_bench::{kron_dataset, BenchArgs};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.kron_scale(20, 12);
    eprintln!("extensions: BC + TC + auto-tuning, Kronecker scale {scale}");
    let ds = kron_dataset(scale, true, args.seed);
    let pool = ThreadPool::new(args.threads);

    // ---- triangle counting across engines ----
    println!("== Triangle counting (each triangle once) ==");
    let mut counts = Vec::new();
    for kind in EngineKind::ALL {
        let mut e = kind.create();
        if !e.supports(Algorithm::TriangleCount) {
            println!("{:<12} {:>12}", kind.name(), "N/A");
            continue;
        }
        e.load_edge_list(ds.edges_for(kind));
        e.construct(&pool);
        let t0 = Instant::now();
        let out = e.run(Algorithm::TriangleCount, &RunParams::new(&pool, None));
        let secs = t0.elapsed().as_secs_f64();
        let AlgorithmResult::Triangles(t) = out.result else { panic!() };
        println!("{:<12} {t:>12} triangles in {secs:.4}s", kind.name());
        counts.push(t);
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "engines disagree: {counts:?}");
    println!("all supporting engines agree.\n");

    // ---- approximate betweenness centrality ----
    println!("== Betweenness centrality (sampled sources) ==");
    for kind in [EngineKind::Gap, EngineKind::GraphBig] {
        let mut e = kind.create();
        e.load_edge_list(ds.edges_for(kind));
        e.construct(&pool);
        let mut params = RunParams::new(&pool, None);
        params.bc_sources = Some(16);
        let t0 = Instant::now();
        let out = e.run(Algorithm::Bc, &params);
        let secs = t0.elapsed().as_secs_f64();
        let AlgorithmResult::Centrality(bc) = out.result else { panic!() };
        let mut top: Vec<(usize, f64)> = bc.iter().copied().enumerate().collect();
        top.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!(
            "{:<12} 16 sources in {secs:.4}s; top vertices: {:?}",
            kind.name(),
            top.iter().take(3).map(|&(v, s)| (v, s.round())).collect::<Vec<_>>()
        );
    }

    // ---- GAP auto-tuning ----
    println!("\n== GAP heuristic parameter tuning ==");
    let mut e = GapEngine::new();
    e.load_edge_list(ds.edges_for(EngineKind::Gap));
    e.construct(&pool);
    println!(
        "defaults: alpha={}, beta={}, delta={}",
        e.config.alpha, e.config.beta, e.config.delta
    );
    let report = e.auto_tune(&pool, &ds.roots);
    println!(
        "tuned:    alpha={}, beta={}, delta={:.4}, sssp_kernel={}",
        report.alpha,
        report.beta,
        report.delta,
        report.sssp_kernel.name()
    );
    println!("delta probes (delta, work cost):");
    for (d, c) in &report.delta_probes {
        println!("  {d:>12.4}  {c:>12}");
    }
    println!("alpha/beta probes ((a,b), work cost):");
    for ((a, b), c) in &report.bfs_probes {
        println!("  ({a:>3},{b:>4})  {c:>12}");
    }
    println!("sssp kernel probes (kernel, work cost):");
    for (k, c) in &report.kernel_probes {
        println!("  {:>12}  {c:>12}", k.name());
    }
}
