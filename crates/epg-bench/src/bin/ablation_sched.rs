//! Ablation: OpenMP scheduling policy (static / dynamic / guided).
//!
//! The engines differ in their worksharing choices (GAP-style guided vs
//! GraphBIG-style dynamic); this ablation measures a skew-sensitive kernel
//! (per-vertex degree-weighted work on a Kronecker graph) under each
//! schedule and chunk size, on a real pool.

use epg::prelude::*;
use epg_bench::{kron_dataset, BenchArgs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.kron_scale(20, 12);
    let threads = args.threads.max(2);
    eprintln!("ablation: schedules on skewed work, Kronecker scale {scale}, {threads} threads");
    let ds = kron_dataset(scale, false, args.seed);
    let g = Csr::from_edge_list(&ds.symmetric);
    let pool = ThreadPool::new(threads);
    let n = g.num_vertices();

    let schedules: [(&str, Schedule); 6] = [
        ("static", Schedule::Static { chunk: None }),
        ("static,64", Schedule::Static { chunk: Some(64) }),
        ("dynamic,16", Schedule::Dynamic { chunk: 16 }),
        ("dynamic,256", Schedule::Dynamic { chunk: 256 }),
        ("guided,16", Schedule::Guided { min_chunk: 16 }),
        ("guided,256", Schedule::Guided { min_chunk: 256 }),
    ];

    println!("{:<14}{:>12}  {:>18}{:>10}", "schedule", "time (s)", "checksum", "chunks");
    for (name, sched) in schedules {
        let before = pool.stats().chunks;
        let sum = AtomicU64::new(0);
        let t0 = Instant::now();
        for _ in 0..3 {
            // Degree-weighted per-vertex work: highly skewed on Kronecker.
            pool.parallel_for_ranges(n, sched, |_tid, lo, hi| {
                let mut local = 0u64;
                for v in lo..hi {
                    for &t in g.neighbors(v as VertexId) {
                        local = local.wrapping_add(t as u64).rotate_left(1);
                    }
                }
                sum.fetch_add(local, Ordering::Relaxed);
            });
        }
        let secs = t0.elapsed().as_secs_f64() / 3.0;
        println!(
            "{name:<14}{secs:>12.5}  {:>18x}{:>10}",
            sum.load(Ordering::Relaxed),
            (pool.stats().chunks - before) / 3
        );
    }
    println!(
        "\nstatic splits leave the thread owning the hub range as a straggler;\n\
         dynamic/guided rebalance at the cost of queue traffic — the tradeoff\n\
         behind GAP's guided vs GraphBIG's dynamic defaults."
    );
}
