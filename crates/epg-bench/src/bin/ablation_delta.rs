//! Ablation: Δ-stepping bucket-width sweep (§V's "Δ for SSSP").
//!
//! Small Δ approaches Dijkstra (many buckets, little parallelism per
//! bucket); huge Δ approaches Bellman-Ford (one bucket, wasted
//! relaxations). The sweet spot depends on the weight distribution.

use epg::gap::{GapConfig, GapEngine};
use epg::prelude::*;
use epg_bench::{kron_dataset, BenchArgs};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.kron_scale(22, 13);
    eprintln!("ablation: delta-stepping sweep, weighted Kronecker scale {scale}");
    let ds = kron_dataset(scale, true, args.seed);
    let pool = ThreadPool::new(args.threads);

    println!("{:<12}{:>16}{:>14}{:>12}", "delta", "edge relaxations", "buckets", "time (s)");
    for delta in [0.01f32, 0.05, 0.1, 0.25, 0.5, 1.0, 4.0, 1000.0] {
        let mut e = GapEngine::with_config(GapConfig { delta, ..Default::default() });
        e.load_edge_list(ds.edges_for(EngineKind::Gap));
        e.construct(&pool);
        let mut relaxed = 0u64;
        let mut buckets = 0u32;
        let t0 = Instant::now();
        for &r in ds.roots.iter().take(args.roots) {
            let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(r)));
            relaxed += out.counters.edges_traversed;
            buckets += out.counters.iterations;
        }
        let secs = t0.elapsed().as_secs_f64() / args.roots as f64;
        println!(
            "{delta:<12}{:>16}{:>14}{:>12.5}",
            relaxed / args.roots as u64,
            buckets / args.roots as u32,
            secs
        );
    }
    println!(
        "\nsmall delta => many buckets (serial bottleneck); huge delta => few\n\
         buckets but re-relaxation waste. GAP ships delta tunable per graph (§V)."
    );
}
