//! Ablation: direction-optimizing BFS on/off and α/β sensitivity.
//!
//! §V: "Advances in parallel SSSP and BFS contain parameterizations (Δ for
//! SSSP and α and β for BFS) which affects performance depending on graph
//! structure. These are provided in GAP." §IV-C notes the paper ran the
//! default α=15, β=18 untuned. This ablation measures edge-traversal work
//! and local kernel time across the switch and a parameter sweep.

use epg::gap::{GapConfig, GapEngine};
use epg::prelude::*;
use epg_bench::{kron_dataset, BenchArgs};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.kron_scale(22, 13);
    eprintln!("ablation: direction-optimizing BFS, Kronecker scale {scale}");
    let ds = kron_dataset(scale, false, args.seed);
    let pool = ThreadPool::new(args.threads);
    let root = ds.roots[0];

    println!("{:<28}{:>16}{:>12}{:>10}", "configuration", "edges traversed", "time (s)", "steps");
    let run = |label: &str, cfg: GapConfig| {
        let mut e = GapEngine::with_config(cfg);
        e.load_edge_list(ds.edges_for(EngineKind::Gap));
        e.construct(&pool);
        // Warm + measure over the sampled roots.
        let mut total_edges = 0u64;
        let mut total_steps = 0u32;
        let t0 = Instant::now();
        for &r in ds.roots.iter().take(args.roots) {
            let out = e.run(Algorithm::Bfs, &RunParams::new(&pool, Some(r)));
            total_edges += out.counters.edges_traversed;
            total_steps += out.counters.iterations;
        }
        let secs = t0.elapsed().as_secs_f64();
        let _ = root;
        println!(
            "{label:<28}{:>16}{:>12.5}{:>10}",
            total_edges / args.roots as u64,
            secs / args.roots as f64,
            total_steps / args.roots as u32
        );
        total_edges
    };

    let off = run("top-down only", GapConfig { direction_optimizing: false, ..Default::default() });
    let on = run("direction-optimizing (15,18)", GapConfig::default());
    for (alpha, beta) in [(1, 18), (4, 18), (64, 18), (15, 2), (15, 64), (256, 1024)] {
        run(
            &format!("alpha={alpha}, beta={beta}"),
            GapConfig { alpha, beta, ..Default::default() },
        );
    }

    println!(
        "\ndirection optimization cut traversed edges by {:.1}x on this graph\n\
         (the mechanism behind GAP's Fig. 2 lead).",
        off as f64 / on as f64
    );
}
