//! Fig. 2 regenerator: BFS kernel-time box plots over 32 roots (GAP,
//! Graph500, GraphBIG, GraphMat) and data-structure construction times
//! (GAP, Graph500, GraphMat; GraphBIG is fused and therefore omitted —
//! exactly as in the paper).
//!
//! Paper setting: Kronecker scale 22, 32 threads, 32 roots.
//! Default here: scale 13, 8 roots, measured locally and also projected
//! onto the paper's 72-thread Haswell at 32 threads.

use epg::harness::plot::{boxplot, Scale};
use epg::harness::stats::Summary;
use epg::prelude::*;
use epg_bench::{kron_dataset, paper_ref, shape_row, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let scale = args.kron_scale(22, 13);
    eprintln!("fig2: BFS times + construction, Kronecker scale {scale}");
    let ds = kron_dataset(scale, false, args.seed);
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Bfs],
        threads: args.threads,
        max_roots: Some(args.roots),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let model = MachineModel::paper_machine();

    println!("== Fig. 2 (left): BFS time over {} roots ==", args.roots);
    let mut groups = Vec::new();
    for kind in [EngineKind::Gap, EngineKind::Graph500, EngineKind::GraphBig, EngineKind::GraphMat]
    {
        let times = result.run_times(kind, Algorithm::Bfs);
        let s = Summary::of(&times);
        // Project each root's trace onto the paper machine at 32 threads.
        let projected: Vec<f64> = result
            .runs
            .iter()
            .filter(|r| r.engine == kind)
            .map(|r| {
                let rate = model.calibrate_rate(&r.output.trace, r.seconds.max(1e-9));
                model.project(&r.output.trace, rate, 32).total_s
            })
            .collect();
        let paper = paper_ref::TABLE3.iter().find(|(n, ..)| *n == kind.name()).map(|r| r.1);
        println!("{}", shape_row(kind.name(), paper, epg_bench::mean(&projected), "s/root"));
        println!(
            "    local measurement: median {:.5}s  [{:.5}, {:.5}]  n={}",
            s.median, s.min, s.max, s.n
        );
        groups.push((kind.name().to_string(), Summary::of(&projected)));
    }
    args.write_artifact(
        "fig2_bfs_time.svg",
        &boxplot("BFS Time (projected, 32 threads)", "Time (seconds)", &groups, Scale::Log),
    );

    // Graph500's own headline statistic for these runs.
    let g500_times = result.run_times(EngineKind::Graph500, Algorithm::Bfs);
    let teps = epg::graph500::teps::TepsStats::from_times(ds.raw.num_edges() as u64, &g500_times);
    println!(
        "\nGraph500 TEPS (local): harmonic mean {:.3e} (min {:.3e}, max {:.3e}, {} runs)",
        teps.harmonic_mean, teps.min, teps.max, teps.runs
    );

    println!("\n== Fig. 2 (right): data structure construction ==");
    let mut groups = Vec::new();
    for kind in [EngineKind::Gap, EngineKind::Graph500, EngineKind::GraphMat] {
        let times = result.construct_times(kind);
        let paper = paper_ref::FIG2_CONSTRUCT.iter().find(|(n, _)| *n == kind.name()).map(|r| r.1);
        println!("{}", shape_row(kind.name(), paper, epg_bench::mean(&times), "s"));
        groups.push((kind.name().to_string(), Summary::of(&times)));
    }
    println!("GraphBIG: omitted — reads the file and builds simultaneously (§III-B)");
    assert!(result.construct_times(EngineKind::GraphBig).is_empty());
    args.write_artifact(
        "fig2_construction.svg",
        &boxplot("BFS Data Structure Construction", "Time (seconds)", &groups, Scale::Log),
    );

    println!("\nshape check: GAP traverses fewest edges thanks to direction optimization:");
    for kind in [EngineKind::Gap, EngineKind::Graph500, EngineKind::GraphBig, EngineKind::GraphMat]
    {
        let run = result.runs.iter().find(|r| r.engine == kind).unwrap();
        println!(
            "  {:<10} {:>12} edges traversed",
            kind.name(),
            run.output.counters.edges_traversed
        );
    }
}
