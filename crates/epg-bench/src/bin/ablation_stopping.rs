//! Ablation: PageRank stopping criteria (§IV-A's homogenization).
//!
//! Sweeps the L1 threshold and compares against GraphMat's native
//! "no vertex changes" (∞-norm) criterion on every engine that runs PR —
//! quantifying how much of Fig. 4's iteration gap is pure stopping-rule
//! choice.

use epg::prelude::*;
use epg_bench::{kron_dataset, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let scale = args.kron_scale(22, 12);
    eprintln!("ablation: PR stopping criteria, Kronecker scale {scale}");
    let ds = kron_dataset(scale, false, args.seed);
    let pool = ThreadPool::new(args.threads);

    let engines =
        [EngineKind::Gap, EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph];
    let criteria: [(&str, Option<StoppingCriterion>); 6] = [
        ("native", None),
        ("L1 < 1e-4", Some(StoppingCriterion::L1Norm(1e-4))),
        ("L1 < 1e-6", Some(StoppingCriterion::L1Norm(1e-6))),
        ("L1 < 6e-8 (paper)", Some(StoppingCriterion::paper_default())),
        ("L1 < 1e-10", Some(StoppingCriterion::L1Norm(1e-10))),
        ("no-change", Some(StoppingCriterion::NoChange)),
    ];

    print!("{:<20}", "criterion");
    for e in engines {
        print!("{:>12}", e.name());
    }
    println!("   (iterations)");
    for (label, stopping) in criteria {
        print!("{label:<20}");
        for kind in engines {
            let mut e = kind.create();
            e.load_edge_list(ds.edges_for(kind));
            e.construct(&pool);
            let mut params = RunParams::new(&pool, None);
            params.stopping = stopping;
            let out = e.run(Algorithm::PageRank, &params);
            print!("{:>12}", out.result.iterations().unwrap());
        }
        println!();
    }
    println!(
        "\n'native' = each system's own rule: GraphMat iterates until no rank\n\
         changes (its column jumps), the rest stop at L1 < 6e-8 — the exact\n\
         inconsistency §IV-A homogenizes away."
    );
}
