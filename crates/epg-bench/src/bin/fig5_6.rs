//! Figs. 5-6 regenerator: BFS strong-scaling speedup (T1/Tn) and parallel
//! efficiency (T1/(n·Tn)) for GraphBIG, Graph500, GraphMat and GAP over
//! threads 1, 2, 4, 8, 16, 32, 64, 72.
//!
//! Paper setting: Kronecker scale 23, 4 trials ("Because of timing
//! considerations, only four trials were run"). Default here: scale 14.
//! Each engine runs once locally (single-threaded measurement); the
//! measured execution trace is projected onto the paper's Haswell by the
//! machine model (see DESIGN.md's substitution table — we do not own a
//! 72-thread machine).

use epg::harness::plot::{line_chart, Scale};
use epg::prelude::*;
use epg_bench::{kron_dataset, BenchArgs};

const THREADS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 72];

fn main() {
    let args = BenchArgs::parse();
    let scale = args.kron_scale(23, 14);
    eprintln!("fig5/6: BFS scaling, Kronecker scale {scale} ({} trials)", 4);
    let ds = kron_dataset(scale, false, args.seed);
    println!("edges = {}", ds.symmetric.num_edges());
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Bfs],
        threads: args.threads,
        max_roots: Some(1),
        trials: 4,
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let model = MachineModel::paper_machine();

    let x_labels: Vec<String> = THREADS.iter().map(|n| n.to_string()).collect();
    let mut speedup_series =
        vec![("Linear".to_string(), THREADS.iter().map(|&n| n as f64).collect::<Vec<f64>>())];
    let mut eff_series = vec![("Ideal".to_string(), vec![1.0; THREADS.len()])];

    println!("\n== Fig. 5: speedup T1/Tn ==");
    print!("{:<12}", "engine");
    for n in THREADS {
        print!("{n:>8}");
    }
    println!();
    for kind in [EngineKind::GraphBig, EngineKind::Graph500, EngineKind::GraphMat, EngineKind::Gap]
    {
        // Average the 4 trials' traces by averaging their projections.
        let runs: Vec<_> = result.runs.iter().filter(|r| r.engine == kind).collect();
        assert_eq!(runs.len(), 4);
        let mut speedups = vec![0.0f64; THREADS.len()];
        let mut effs = vec![0.0f64; THREADS.len()];
        for run in &runs {
            let rate = model.calibrate_rate(&run.output.trace, run.seconds.max(1e-9));
            for (i, (n, s)) in
                model.speedup_curve(&run.output.trace, rate, &THREADS).into_iter().enumerate()
            {
                speedups[i] += s / runs.len() as f64;
                effs[i] += s / (n as f64 * runs.len() as f64);
            }
        }
        print!("{:<12}", kind.name());
        for s in &speedups {
            print!("{s:>8.2}");
        }
        println!();
        speedup_series.push((kind.name().to_string(), speedups));
        eff_series.push((kind.name().to_string(), effs));
    }
    args.write_artifact(
        "fig5_bfs_speedup.svg",
        &line_chart("BFS Speedup", "Speedup", &x_labels, &speedup_series, Scale::Log),
    );

    println!("\n== Fig. 6: parallel efficiency T1/(n*Tn) ==");
    print!("{:<12}", "engine");
    for n in THREADS {
        print!("{n:>8}");
    }
    println!();
    for (name, effs) in eff_series.iter().skip(1) {
        print!("{name:<12}");
        for e in effs {
            print!("{e:>8.3}");
        }
        println!();
    }
    args.write_artifact(
        "fig6_bfs_efficiency.svg",
        &line_chart("BFS Parallel Efficiency", "T1/(n*Tn)", &x_labels, &eff_series, Scale::Linear),
    );

    // Absolute projected times: normalization hides that GAP does far less
    // work; in absolute terms it stays fastest at every thread count.
    println!("\n== projected absolute BFS time (seconds) ==");
    print!("{:<12}", "engine");
    for n in THREADS {
        print!("{n:>11}");
    }
    println!();
    for kind in [EngineKind::GraphBig, EngineKind::Graph500, EngineKind::GraphMat, EngineKind::Gap]
    {
        let run = result.runs.iter().find(|r| r.engine == kind).unwrap();
        let rate = model.calibrate_rate(&run.output.trace, run.seconds.max(1e-9));
        print!("{:<12}", kind.name());
        for &n in &THREADS {
            print!("{:>11.6}", model.project(&run.output.trace, rate, n).total_s);
        }
        println!();
    }

    println!(
        "\npaper shapes: generally poor scaling at this size (all curves far\n\
         below linear). Note on normalized speedup: our deterministic model\n\
         ranks work-heavy engines (Graph500) higher than the paper measured,\n\
         because T1/Tn normalizes away GAP's direction-optimization work\n\
         savings while fixed per-level costs dominate its short kernel; the\n\
         paper's Graph500 2-thread dip was CPU-spike noise it is explicitly\n\
         'more sensitive' to (§IV-B). GAP remains fastest in absolute time\n\
         at every thread count. See EXPERIMENTS.md."
    );
}
