//! Table II regenerator: Graphalytics on the same Kronecker graph used by
//! the other experiments — {GraphMat, GraphBIG, PowerGraph} ×
//! {CDLP, PR, LCC, WCC, BFS}, single run, 32 threads.
//!
//! Paper setting: scale 22. Default here: scale 12.

use epg::harness::graphalytics::{self, GRAPHALYTICS_ENGINES};
use epg::prelude::*;
use epg_bench::{kron_dataset, paper_ref, BenchArgs};

const ROWS: [Algorithm; 5] =
    [Algorithm::Cdlp, Algorithm::PageRank, Algorithm::Lcc, Algorithm::Wcc, Algorithm::Bfs];

fn main() {
    let args = BenchArgs::parse();
    let scale = args.kron_scale(22, 12);
    eprintln!("table2: Graphalytics on Kronecker scale {scale}");
    let ds = kron_dataset(scale, false, args.seed);
    let cells = graphalytics::run_graphalytics(&GRAPHALYTICS_ENGINES, &ROWS, &ds, args.threads);

    println!("== Table II (ours): Kronecker scale {scale}, seconds, one run ==");
    println!("{:<28}{:>10}{:>10}{:>11}", "Graphalytics", "GraphMat", "GraphBIG", "PowerGraph");
    for algo in ROWS {
        print!("{:<28}", algo.name());
        for engine in [EngineKind::GraphMat, EngineKind::GraphBig, EngineKind::PowerGraph] {
            let t = cells
                .iter()
                .find(|c| c.engine == engine && c.algorithm == algo)
                .and_then(|c| c.reported_seconds);
            match t {
                Some(x) => print!("{x:>10.3}"),
                None => print!("{:>10}", "N/A"),
            }
        }
        println!();
    }

    println!("\n== Table II (paper, scale 22 on 72T Haswell) ==");
    println!("{:<28}{:>10}{:>10}{:>11}", "Graphalytics", "GraphMat", "GraphBIG", "PowerGraph");
    for (name, gm, gb, pg) in paper_ref::TABLE2 {
        println!("{name:<28}{gm:>10.1}{gb:>10.1}{pg:>11.1}");
    }

    // Paper shapes worth checking at any scale:
    // (1) PowerGraph is the slowest on BFS-like cheap kernels (WCC, BFS is
    //     N/A for PowerGraph in our faithful toolkit, so use WCC/PR);
    let t = |e: EngineKind, a: Algorithm| {
        cells
            .iter()
            .find(|c| c.engine == e && c.algorithm == a)
            .and_then(|c| c.reported_seconds)
            .unwrap_or(f64::NAN)
    };
    for a in [Algorithm::Wcc, Algorithm::PageRank] {
        let pg = t(EngineKind::PowerGraph, a);
        let others = [t(EngineKind::GraphMat, a), t(EngineKind::GraphBig, a)];
        println!(
            "shape: PowerGraph {} {:.3}s vs others {:?} -> {}",
            a.abbrev(),
            pg,
            others,
            if others.iter().all(|&o| pg > o) {
                "PowerGraph slowest (as in paper)"
            } else {
                "DEVIATION"
            }
        );
    }
    // (2) LCC is every system's most expensive kernel.
    for e in GRAPHALYTICS_ENGINES {
        let lcc = t(e, Algorithm::Lcc);
        let max_other = ROWS
            .iter()
            .filter(|&&a| a != Algorithm::Lcc)
            .map(|&a| t(e, a))
            .filter(|x| x.is_finite())
            .fold(0.0f64, f64::max);
        println!(
            "shape: {} LCC {:.3}s vs max(other) {:.3}s -> {}",
            e.name(),
            lcc,
            max_other,
            if lcc >= max_other { "LCC dominates (as in paper)" } else { "DEVIATION" }
        );
    }
    // Note: the paper's Table II reports a BFS time for PowerGraph because
    // Graphalytics ships its own PowerGraph BFS driver; our engine models
    // the stock toolkits (no BFS), so that cell is N/A here.
    println!(
        "\nnote: PowerGraph BFS is N/A here: the stock toolkits provide no BFS\n\
         (§III-D); Graphalytics bundles its own driver for Table II."
    );
}
