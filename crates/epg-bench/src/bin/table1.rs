//! Table I regenerator: Graphalytics-style single-run times for
//! {GraphBIG, PowerGraph, GraphMat} × {BFS, CDLP, LCC, PR, SSSP, WCC} on
//! the cit-Patents and dota-league stand-ins, including the GraphMat
//! phase-log excerpt that exposes the phase-confounding pitfall.
//!
//! Paper setting: the real datasets, 32 threads, ONE run per cell.
//! Default here: stand-ins at 1/256 (cit-Patents) and n=1024/deg=96
//! (dota-league); `--full` uses the original sizes.

use epg::harness::graphalytics::{self, GRAPHALYTICS_ENGINES, TABLE1_ALGOS};
use epg::harness::logs;
use epg::prelude::*;
use epg_bench::{paper_ref, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let div = args.dataset_div(256);
    eprintln!("table1: Graphalytics methodology on the real-world stand-ins (div {div})");

    let cit = Dataset::from_spec(&GraphSpec::CitPatents { scale_div: div }, args.seed);
    // dota-league's defining trait is density: scale vertices faster than
    // degree so the stand-in stays dense (deg ~ n/10, as in the original).
    let dota = Dataset::from_spec(
        &GraphSpec::DotaLeague {
            num_vertices: (61_670 / div as usize).max(512),
            avg_degree: (824 / (div / 8).max(1)).clamp(48, 824),
        },
        args.seed,
    );
    for ds in [&cit, &dota] {
        eprintln!("  {}: {} vertices, {} edges", ds.name, ds.raw.num_vertices, ds.raw.num_edges());
    }

    let mut cells =
        graphalytics::run_graphalytics(&GRAPHALYTICS_ENGINES, &TABLE1_ALGOS, &cit, args.threads);
    cells.extend(graphalytics::run_graphalytics(
        &GRAPHALYTICS_ENGINES,
        &TABLE1_ALGOS,
        &dota,
        args.threads,
    ));

    println!("== Table I (ours): Graphalytics single-run times, seconds ==");
    let table = graphalytics::format_table(
        &cells,
        &GRAPHALYTICS_ENGINES,
        &[cit.name.clone(), dota.name.clone()],
    );
    println!("{table}");

    println!("== Table I (paper, full-size datasets on 72T Haswell) ==");
    println!(
        "{:<12}{:<14}{:>8}{:>8}{:>9}{:>7}{:>7}{:>7}",
        "system", "dataset", "BFS", "CDLP", "LCC", "PR", "SSSP", "WCC"
    );
    for (sys, ds, vals) in paper_ref::TABLE1 {
        print!("{sys:<12}{ds:<14}");
        for v in vals {
            match v {
                Some(x) => print!("{x:>8.1}"),
                None => print!("{:>8}", "N/A"),
            }
        }
        println!();
    }

    // The excerpt under Table I: GraphMat's own log for PR on dota-league.
    let gm_pr = cells
        .iter()
        .find(|c| {
            c.engine == EngineKind::GraphMat
                && c.algorithm == Algorithm::PageRank
                && c.dataset == dota.name
        })
        .expect("GraphMat PR cell");
    let p = gm_pr.true_phases.unwrap();
    println!("\n== GraphMat log excerpt (ours), as below Table I ==");
    let entries = [
        logs::LogEntry { phase: Phase::ReadFile, seconds: p.read_s },
        logs::LogEntry { phase: Phase::Construct, seconds: p.construct_s },
        logs::LogEntry { phase: Phase::Run, seconds: p.run_s },
        logs::LogEntry { phase: Phase::Output, seconds: p.output_s },
    ];
    print!(
        "{}",
        logs::render_log(
            epg::engine_api::logfmt::LogStyle::GraphMat,
            &format!("PageRank on {}", dota.name),
            &entries
        )
    );
    println!(
        "\nreported {:.4}s but {:.4}s of that is the file read: ignore it and\n\
         GraphMat completes {:.1}x faster — the paper's fairness complaint.",
        gm_pr.reported_seconds.unwrap(),
        p.read_s,
        gm_pr.reported_seconds.unwrap() / (gm_pr.reported_seconds.unwrap() - p.read_s).max(1e-9)
    );

    // Structural shape checks (the claims Table I supports).
    for c in &cells {
        let expect_na = (c.engine == EngineKind::PowerGraph && c.algorithm == Algorithm::Bfs)
            || (c.algorithm == Algorithm::Sssp && c.dataset == cit.name);
        assert_eq!(c.reported_seconds.is_none(), expect_na, "N/A structure broke: {c:?}");
    }
    // LCC is the most expensive column on the dense graph for every system
    // (dota's 1073.7 / 458.1 / 239.7 in the paper).
    for &engine in &GRAPHALYTICS_ENGINES {
        let lcc = cell_time(&cells, engine, Algorithm::Lcc, &dota.name);
        for a in [Algorithm::Bfs, Algorithm::PageRank, Algorithm::Wcc] {
            if engine == EngineKind::PowerGraph && a == Algorithm::Bfs {
                continue; // no BFS toolkit: nothing to compare
            }
            let t = cell_time(&cells, engine, a, &dota.name);
            println!(
                "shape: {} dota LCC {:.3}s vs {} {:.3}s -> {}",
                engine.name(),
                lcc,
                a.abbrev(),
                t,
                if lcc > t { "LCC dominates (as in paper)" } else { "DEVIATION" }
            );
        }
    }
}

fn cell_time(cells: &[graphalytics::Cell], engine: EngineKind, algo: Algorithm, ds: &str) -> f64 {
    cells
        .iter()
        .find(|c| c.engine == engine && c.algorithm == algo && c.dataset == ds)
        .and_then(|c| c.reported_seconds)
        .unwrap_or(f64::NAN)
}
