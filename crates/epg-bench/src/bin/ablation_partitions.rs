//! Ablation: PowerGraph vertex-cut partition count.
//!
//! §IV-C attributes PowerGraph's dense-graph advantage to its partitioning
//! and its overhead to replication. This ablation sweeps the partition
//! count on a sparse and a dense stand-in, reporting the replication
//! factor, mirror count, and SSSP work — making the tradeoff the paper
//! describes directly measurable.

use epg::powergraph::partition::PartitionedGraph;
use epg::powergraph::{PowerGraphConfig, PowerGraphEngine};
use epg::prelude::*;
use epg_bench::BenchArgs;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let div = args.dataset_div(512);
    let sparse = Dataset::from_spec(&GraphSpec::CitPatents { scale_div: div }, args.seed);
    let dense = Dataset::from_spec(
        &GraphSpec::DotaLeague {
            num_vertices: (61_670 / div as usize).max(512),
            avg_degree: (824 / (div / 8).max(1)).clamp(48, 824),
        },
        args.seed,
    );
    let pool = ThreadPool::new(args.threads);

    for ds in [&sparse, &dense] {
        println!(
            "== {} ({} vertices, {} edges) ==",
            ds.name,
            ds.raw.num_vertices,
            ds.raw.num_edges()
        );
        println!(
            "{:>11} {:>12} {:>12} {:>14} {:>12}",
            "partitions", "repl factor", "mirrors", "SSSP edges", "SSSP time"
        );
        for p in [1usize, 2, 4, 8, 16, 32] {
            let pg = PartitionedGraph::build(&ds.symmetric, p);
            let mut e = PowerGraphEngine::with_config(PowerGraphConfig { num_partitions: p });
            e.load_edge_list(ds.edges_for(EngineKind::PowerGraph));
            e.construct(&pool);
            let root = ds.roots[0];
            let t0 = Instant::now();
            let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(root)));
            let secs = t0.elapsed().as_secs_f64();
            println!(
                "{p:>11} {:>12.3} {:>12} {:>14} {:>12.5}",
                pg.replication_factor(),
                pg.num_mirrors(),
                out.counters.edges_traversed,
                secs
            );
        }
        println!();
    }
    println!(
        "replication factor grows with partition count and graph density —\n\
         every apply pays one sync message per mirror, which is the paper's\n\
         'significant overhead' (§IV-C); but more partitions also spread the\n\
         dense graph's hub work, which is why dota flatters PowerGraph."
    );
}
