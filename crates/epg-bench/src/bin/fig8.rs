//! Fig. 8 regenerator: easy-parallel-graph-* on the real-world stand-ins —
//! mean kernel times for {BFS, PageRank, SSSP} × {dota, Patents} ×
//! {GAP, GraphBIG, GraphMat, PowerGraph}. "The leftmost plot is missing
//! PowerGraph because PowerGraph does not provide BFS."
//!
//! Paper setting: the real datasets, 32 threads, 32 roots.

use epg::harness::plot::bar_chart;
use epg::prelude::*;
use epg_bench::{mean, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let div = args.dataset_div(256);
    eprintln!("fig8: real-world experiments (dataset divisor {div})");
    let patents = Dataset::from_spec(&GraphSpec::CitPatents { scale_div: div }, args.seed);
    let dota = Dataset::from_spec(
        &GraphSpec::DotaLeague {
            num_vertices: (61_670 / div as usize).max(512),
            avg_degree: (824 / (div / 8).max(1)).clamp(48, 824),
        },
        args.seed,
    );

    let engines =
        vec![EngineKind::Gap, EngineKind::GraphBig, EngineKind::GraphMat, EngineKind::PowerGraph];
    let mut all: Vec<(String, Algorithm, EngineKind, f64)> = Vec::new();
    for ds in [&dota, &patents] {
        let cfg = ExperimentConfig {
            engines: engines.clone(),
            algorithms: vec![Algorithm::Bfs, Algorithm::PageRank, Algorithm::Sssp],
            threads: args.threads,
            max_roots: Some(args.roots),
            ..ExperimentConfig::new()
        };
        let result = run_experiment(&cfg, ds);
        for &e in &engines {
            for a in [Algorithm::Bfs, Algorithm::PageRank, Algorithm::Sssp] {
                let times = result.run_times(e, a);
                if !times.is_empty() {
                    all.push((ds.name.clone(), a, e, mean(&times)));
                }
            }
        }
    }

    for algo in [Algorithm::Bfs, Algorithm::PageRank, Algorithm::Sssp] {
        println!("== Fig. 8 panel: {} (mean seconds) ==", algo.name());
        println!("{:<12}{:>14}{:>14}", "system", "dota", "Patents");
        let mut bars = Vec::new();
        for &e in &engines {
            print!("{:<12}", e.name());
            for ds in [&dota, &patents] {
                let v = all
                    .iter()
                    .find(|(d, a, k, _)| d == &ds.name && *a == algo && *k == e)
                    .map(|r| r.3);
                match v {
                    Some(x) => {
                        print!("{x:>14.5}");
                        bars.push((format!("{}/{}", e.name(), short(&ds.name)), x));
                    }
                    None => print!("{:>14}", "absent"),
                }
            }
            println!();
        }
        args.write_artifact(
            &format!("fig8_{}.svg", algo.abbrev().to_lowercase()),
            &bar_chart(&format!("{} (real-world stand-ins)", algo.abbrev()), "Time (s)", &bars),
        );
        println!();
    }

    // Structural checks from the paper's discussion of Fig. 8:
    let get = |ds: &Dataset, a: Algorithm, e: EngineKind| {
        all.iter().find(|(d, x, k, _)| d == &ds.name && *x == a && *k == e).map(|r| r.3)
    };
    // (1) PowerGraph has no BFS bar.
    assert!(get(&dota, Algorithm::Bfs, EngineKind::PowerGraph).is_none());
    println!("shape: BFS panel has no PowerGraph bar (no BFS toolkit) — as in paper");
    // (2) PowerGraph is relatively better on the dense dota graph for SSSP:
    //     its slowdown factor vs GAP shrinks from Patents to dota.
    let ratio = |ds: &Dataset| {
        get(ds, Algorithm::Sssp, EngineKind::PowerGraph).unwrap()
            / get(ds, Algorithm::Sssp, EngineKind::Gap).unwrap()
    };
    let (rd, rp) = (ratio(&dota), ratio(&patents));
    println!(
        "shape: PowerGraph/GAP SSSP ratio: dota {rd:.2}x vs Patents {rp:.2}x -> {}",
        if rd < rp { "dense graph flatters PowerGraph (as in paper)" } else { "DEVIATION" }
    );
    // (3) GraphMat performs relatively better on the denser dota dataset.
    let gm_ratio = |ds: &Dataset| {
        get(ds, Algorithm::PageRank, EngineKind::GraphMat).unwrap()
            / get(ds, Algorithm::PageRank, EngineKind::GraphBig).unwrap()
    };
    let (gd, gp) = (gm_ratio(&dota), gm_ratio(&patents));
    println!(
        "shape: GraphMat/GraphBIG PR ratio: dota {gd:.2}x vs Patents {gp:.2}x -> {}",
        if gd < gp { "SpMV pays off on the dense graph (as in paper)" } else { "DEVIATION" }
    );
}

fn short(name: &str) -> &str {
    if name.starts_with("dota") {
        "dota"
    } else if name.starts_with("cit") {
        "Patents"
    } else {
        name
    }
}
