//! Fig. 4 regenerator: PageRank time box plot (log y) and iteration-count
//! bars for GAP, PowerGraph, GraphBIG, GraphMat under their *native*
//! stopping criteria — GraphMat runs "until none of the vertices' ranks
//! change" while the others stop at L1 < 6e-8, which is why its bar
//! dwarfs the rest.
//!
//! Paper setting: Kronecker scale 22, 32 threads, 32 runs.

use epg::harness::plot::{bar_chart, boxplot, Scale};
use epg::harness::stats::Summary;
use epg::prelude::*;
use epg_bench::{kron_dataset, paper_ref, shape_row, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let scale = args.kron_scale(22, 13);
    eprintln!("fig4: PageRank time + iterations, Kronecker scale {scale}");
    let ds = kron_dataset(scale, false, args.seed);
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::PageRank],
        threads: args.threads,
        max_roots: Some(args.roots),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let model = MachineModel::paper_machine();
    let engines =
        [EngineKind::Gap, EngineKind::PowerGraph, EngineKind::GraphBig, EngineKind::GraphMat];

    println!("== Fig. 4 (left): PageRank time, {} runs ==", args.roots);
    let mut groups = Vec::new();
    for kind in engines {
        let times = result.run_times(kind, Algorithm::PageRank);
        let projected: Vec<f64> = result
            .runs
            .iter()
            .filter(|r| r.engine == kind)
            .map(|r| {
                let rate = model.calibrate_rate(&r.output.trace, r.seconds.max(1e-9));
                model.project(&r.output.trace, rate, 32).total_s
            })
            .collect();
        println!("{}", shape_row(kind.name(), None, epg_bench::mean(&projected), "s"));
        println!("    local: median {:.5}s over {} runs", Summary::of(&times).median, times.len());
        groups.push((kind.name().to_string(), Summary::of(&projected)));
    }
    args.write_artifact(
        "fig4_pr_time.svg",
        &boxplot("PageRank Time (projected, 32 threads)", "Time (seconds)", &groups, Scale::Log),
    );

    println!("\n== Fig. 4 (right): PageRank iterations (native stopping criteria) ==");
    let mut bars = Vec::new();
    for kind in engines {
        let iters = result.pr_iterations(kind);
        let mean_iters = iters.iter().map(|&x| x as f64).sum::<f64>() / iters.len() as f64;
        let paper = paper_ref::FIG4_ITERS.iter().find(|(n, _)| *n == kind.name()).map(|r| r.1);
        println!("{}", shape_row(kind.name(), paper, mean_iters, "iters"));
        bars.push((kind.name().to_string(), mean_iters));
    }
    args.write_artifact(
        "fig4_pr_iterations.svg",
        &bar_chart("PageRank Iterations", "Iterations", &bars),
    );

    // Paper shapes: GraphMat iterates most; GAP needs the fewest.
    let get = |k: EngineKind| bars.iter().find(|(n, _)| n == k.name()).unwrap().1;
    let gm = get(EngineKind::GraphMat);
    for kind in [EngineKind::Gap, EngineKind::PowerGraph, EngineKind::GraphBig] {
        let v = get(kind);
        println!(
            "shape: GraphMat {} iters vs {} {} -> {}",
            gm,
            kind.name(),
            v,
            if gm >= v { "GraphMat iterates most (as in paper)" } else { "DEVIATION" }
        );
    }

    // §IV-A variance observation: PageRank's relative standard deviation is
    // below the same engine's SSSP rsd (checked in the paper between 1/4
    // and 1/2); report it.
    println!("\nrelative standard deviation of PR runs per engine:");
    for kind in engines {
        let s = Summary::of(&result.run_times(kind, Algorithm::PageRank));
        println!("  {:<11} rsd = {:.4}", kind.name(), s.relative_stddev());
    }
}
