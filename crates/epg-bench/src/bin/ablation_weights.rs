//! Ablation: GAP's weight representation (float vs integer).
//!
//! §IV-A: "the GAP Benchmark Suite can be recompiled to store weights as
//! integers or floating-point values. This may affect performance in
//! addition to runtime behavior in cases where weights like 0.2 are cast
//! to 0." This ablation quantifies both: the SSSP result distortion (how
//! many distances change, whether zero-weight edges appear) and the
//! timing difference.

use epg::gap::{GapConfig, GapEngine, WeightRepr};
use epg::prelude::*;
use epg_bench::{kron_dataset, BenchArgs};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.kron_scale(22, 13);
    eprintln!("ablation: weight representation, weighted Kronecker scale {scale}");
    // Kronecker weights are uniform (0,1]: truncation maps almost all to 0.
    let ds = kron_dataset(scale, true, args.seed);
    let pool = ThreadPool::new(args.threads);
    let root = ds.roots[0];

    let mut results = Vec::new();
    for (label, repr) in
        [("float (default)", WeightRepr::Float), ("int (truncated)", WeightRepr::Int)]
    {
        let mut e = GapEngine::with_config(GapConfig { weight_repr: repr, ..Default::default() });
        e.load_edge_list(ds.edges_for(EngineKind::Gap));
        e.construct(&pool);
        let t0 = Instant::now();
        let out = e.run(Algorithm::Sssp, &RunParams::new(&pool, Some(root)));
        let secs = t0.elapsed().as_secs_f64();
        let AlgorithmResult::Distances(d) = out.result else { panic!() };
        println!(
            "{label:<18} time {secs:.5}s, relaxations {}, mean finite distance {:.4}",
            out.counters.edges_traversed,
            mean_finite(&d)
        );
        results.push(d);
    }

    let (float_d, int_d) = (&results[0], &results[1]);
    let changed = float_d
        .iter()
        .zip(int_d)
        .filter(|(a, b)| (**a - **b).abs() > 1e-6 && (a.is_finite() || b.is_finite()))
        .count();
    let zeroed = int_d.iter().filter(|&&x| x == 0.0).count();
    println!(
        "\ntruncation changed {changed} of {} distances; {zeroed} vertices now sit\n\
         at distance 0 (uniform (0,1] weights all truncate to 0 — the paper's\n\
         'weights like 0.2 are cast to 0' hazard, degenerating SSSP into a\n\
         reachability sweep).",
        float_d.len()
    );
}

fn mean_finite(d: &[f32]) -> f64 {
    let finite: Vec<f64> = d.iter().filter(|x| x.is_finite()).map(|&x| x as f64).collect();
    finite.iter().sum::<f64>() / finite.len().max(1) as f64
}
