//! Fig. 7 regenerator: the Graphalytics per-system HTML report pages
//! ("Graphalytics outputs one HTML page per software package") for
//! real-world and synthetic experiments on GraphBIG.

use epg::harness::graphalytics::{self, GRAPHALYTICS_ENGINES, TABLE1_ALGOS};
use epg::prelude::*;
use epg_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let div = args.dataset_div(512);
    eprintln!("fig7: Graphalytics HTML reports (dataset divisor {div})");
    let datasets = [
        Dataset::from_spec(&GraphSpec::CitPatents { scale_div: div }, args.seed),
        Dataset::from_spec(
            &GraphSpec::DotaLeague {
                num_vertices: (61_670 / div as usize).max(512),
                avg_degree: (824 / (div / 8).max(1)).clamp(48, 824),
            },
            args.seed,
        ),
        Dataset::from_spec(
            &GraphSpec::Kronecker {
                scale: args.kron_scale(22, 11),
                edge_factor: 16,
                weighted: false,
            },
            args.seed,
        ),
    ];

    let mut cells = Vec::new();
    for ds in &datasets {
        cells.extend(graphalytics::run_graphalytics(
            &GRAPHALYTICS_ENGINES,
            &TABLE1_ALGOS,
            ds,
            args.threads,
        ));
    }

    for system in GRAPHALYTICS_ENGINES {
        let html = graphalytics::html_report(system, &cells);
        args.write_artifact(&format!("fig7_graphalytics_{}.html", system.name()), &html);
    }
    println!(
        "wrote one HTML page per system (Fig. 7 shows GraphBIG's), covering\n\
         {} datasets x {} algorithms, one run per cell.",
        datasets.len(),
        TABLE1_ALGOS.len()
    );
}
