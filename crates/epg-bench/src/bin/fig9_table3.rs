//! Fig. 9 + Table III regenerator: power and energy during BFS.
//!
//! Runs BFS per engine per root, calibrates the machine model from each
//! measured run, and integrates the RAPL simulator at 32 target threads:
//! per-root CPU/RAM average power (Fig. 9 box plots) and the Table III
//! energy accounting (time, power, energy, sleeping energy, increase over
//! sleep).
//!
//! Paper setting: Kronecker scale 22, 32 threads, 32 roots, real RAPL MSRs
//! via PAPI. Ours: the simulated Haswell (see DESIGN.md substitutions).

use epg::harness::plot::{boxplot, Scale};
use epg::harness::stats::Summary;
use epg::machine::rapl::PowerRapl;
use epg::prelude::*;
use epg_bench::{kron_dataset, mean, paper_ref, shape_row, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let scale = args.kron_scale(22, 13);
    eprintln!("fig9/table3: power + energy during BFS, Kronecker scale {scale}");
    let ds = kron_dataset(scale, false, args.seed);
    let cfg = ExperimentConfig {
        algorithms: vec![Algorithm::Bfs],
        threads: args.threads,
        max_roots: Some(args.roots),
        ..ExperimentConfig::new()
    };
    let result = run_experiment(&cfg, &ds);
    let model = MachineModel::paper_machine();
    let engines =
        [EngineKind::Gap, EngineKind::Graph500, EngineKind::GraphBig, EngineKind::GraphMat];

    let mut cpu_groups = Vec::new();
    let mut ram_groups = Vec::new();
    println!("== Table III (ours): per-root averages at 32 projected threads ==");
    println!(
        "{:<12}{:>12}{:>12}{:>14}{:>16}{:>12}",
        "engine", "time (s)", "power (W)", "energy (J)", "sleep energy(J)", "vs sleep"
    );
    for kind in engines {
        let mut times = Vec::new();
        let mut cpu_w = Vec::new();
        let mut ram_w = Vec::new();
        let mut energy = Vec::new();
        let mut sleep_j = Vec::new();
        for run in result.runs.iter().filter(|r| r.engine == kind) {
            let rate = model.calibrate_rate(&run.output.trace, run.seconds.max(1e-9));
            let mut rapl = PowerRapl::init(&model, rate, 32);
            rapl.start();
            rapl.record(&run.output.trace);
            let rep = rapl.end();
            times.push(rep.duration_s);
            cpu_w.push(rep.avg_cpu_w);
            ram_w.push(rep.avg_ram_w);
            energy.push(rep.total_j());
            sleep_j.push(model.sleep_baseline(rep.duration_s).total_j());
        }
        println!(
            "{:<12}{:>12.5}{:>12.2}{:>14.4}{:>16.4}{:>12.3}",
            kind.name(),
            mean(&times),
            mean(&cpu_w),
            mean(&energy),
            mean(&sleep_j),
            mean(&energy) / mean(&sleep_j)
        );
        cpu_groups.push((kind.name().to_string(), Summary::of(&cpu_w)));
        ram_groups.push((kind.name().to_string(), Summary::of(&ram_w)));
    }

    println!("\n== Table III (paper) ==");
    println!(
        "{:<12}{:>12}{:>12}{:>14}{:>16}{:>12}",
        "engine", "time (s)", "power (W)", "energy (J)", "sleep energy(J)", "vs sleep"
    );
    for (name, t, w, j, sj, inc) in paper_ref::TABLE3 {
        println!("{name:<12}{t:>12.5}{w:>12.2}{j:>14.3}{sj:>16.4}{inc:>12.3}");
    }

    println!("\n== Fig. 9: average power per root (simulated RAPL) ==");
    for (groups, refvals, label) in [
        (&cpu_groups, &paper_ref::FIG9_CPU_W[..], "CPU"),
        (&ram_groups, &paper_ref::FIG9_RAM_W[..], "RAM"),
    ] {
        println!("{label} power:");
        for (name, s) in groups.iter() {
            let paper = refvals.iter().find(|(n, _)| n == name).map(|r| r.1);
            println!("  {}", shape_row(name, paper, s.median, "W"));
        }
    }
    let sleep = model.sleep_baseline(10.0);
    println!(
        "sleep baseline: CPU {:.1} W, RAM {:.1} W (paper baseline: unistd sleep(10))",
        sleep.avg_cpu_w, sleep.avg_ram_w
    );
    args.write_artifact(
        "fig9_cpu_power.svg",
        &boxplot(
            "CPU Average Power During BFS",
            "Average Power (Watts)",
            &cpu_groups,
            Scale::Linear,
        ),
    );
    args.write_artifact(
        "fig9_ram_power.svg",
        &boxplot("RAM Power During BFS", "Average Power (Watts)", &ram_groups, Scale::Linear),
    );

    // The paper's headline: the fastest code is also the most energy
    // efficient (Table III discussion).
    println!("\nshape: ranking engines by projected time and by energy:");
    let mut by_time: Vec<(&str, f64, f64)> = engines
        .iter()
        .map(|&k| {
            let runs: Vec<_> = result.runs.iter().filter(|r| r.engine == k).collect();
            let reps: Vec<_> = runs
                .iter()
                .map(|r| {
                    let rate = model.calibrate_rate(&r.output.trace, r.seconds.max(1e-9));
                    model.energy(&r.output.trace, rate, 32)
                })
                .collect();
            (
                k.name(),
                mean(&reps.iter().map(|x| x.duration_s).collect::<Vec<_>>()),
                mean(&reps.iter().map(|x| x.total_j()).collect::<Vec<_>>()),
            )
        })
        .collect();
    by_time.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut energy_sorted = by_time.clone();
    energy_sorted.sort_by(|a, b| a.2.total_cmp(&b.2));
    let same_order = by_time.iter().map(|x| x.0).eq(energy_sorted.iter().map(|x| x.0));
    println!(
        "  time order:   {:?}\n  energy order: {:?}\n  -> {}",
        by_time.iter().map(|x| x.0).collect::<Vec<_>>(),
        energy_sorted.iter().map(|x| x.0).collect::<Vec<_>>(),
        if same_order { "fastest is most energy efficient (as in paper)" } else { "orders differ" }
    );
}
