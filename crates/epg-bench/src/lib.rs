//! Shared plumbing for the table/figure regenerators.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). They accept:
//!
//! ```text
//! --full        run at the paper's original sizes (hours of CPU)
//! --scale N     override the Kronecker scale / dataset divisor
//! --threads N   local thread-pool size (default 1)
//! --roots N     roots / repetitions per experiment (default 8; paper: 32)
//! --out DIR     artifact directory (default target/epg-out)
//! ```
//!
//! Outputs print three things per cell where applicable: the paper's
//! published value (their C/C++ systems on a 72-thread Haswell), our local
//! measurement, and the machine-model projection onto the paper's machine.
//! Absolute numbers are not expected to match; shapes are (EXPERIMENTS.md
//! records both).

use epg::prelude::*;
use std::path::PathBuf;

/// Parsed common flags.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Run at paper-original sizes.
    pub full: bool,
    /// Explicit scale override.
    pub scale: Option<u32>,
    /// Local pool size.
    pub threads: usize,
    /// Roots / repetitions.
    pub roots: usize,
    /// Artifact directory.
    pub out_dir: PathBuf,
    /// RNG seed.
    pub seed: u64,
}

impl BenchArgs {
    /// Parses `std::env::args`; exits with a message on bad flags.
    pub fn parse() -> BenchArgs {
        let mut a = BenchArgs {
            full: false,
            scale: None,
            threads: 1,
            roots: 8,
            out_dir: PathBuf::from("target/epg-out"),
            seed: 42,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--full" => a.full = true,
                "--scale" => a.scale = Some(val("--scale").parse().expect("--scale")),
                "--threads" => a.threads = val("--threads").parse().expect("--threads"),
                "--roots" => a.roots = val("--roots").parse().expect("--roots"),
                "--out" => a.out_dir = PathBuf::from(val("--out")),
                "--seed" => a.seed = val("--seed").parse().expect("--seed"),
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        a
    }

    /// Picks the Kronecker scale: explicit > full(paper) > default.
    pub fn kron_scale(&self, paper: u32, default: u32) -> u32 {
        self.scale.unwrap_or(if self.full { paper } else { default })
    }

    /// Dataset divisor for the real-world stand-ins: explicit `--scale`
    /// wins, then `--full` means 1 (original size), then the default.
    pub fn dataset_div(&self, default: u32) -> u32 {
        self.scale.unwrap_or(if self.full { 1 } else { default })
    }

    /// Writes an artifact under `out_dir/figures`, returning its path.
    pub fn write_artifact(&self, name: &str, content: &str) -> PathBuf {
        let dir = self.out_dir.join("figures");
        std::fs::create_dir_all(&dir).expect("create artifact dir");
        let path = dir.join(name);
        std::fs::write(&path, content).expect("write artifact");
        eprintln!("wrote {}", path.display());
        path
    }
}

/// A labeled (paper value, our value) pair for shape comparison output.
pub fn shape_row(label: &str, paper: Option<f64>, ours: f64, unit: &str) -> String {
    match paper {
        Some(p) => format!("{label:<24} paper: {p:>10.4} {unit}   ours: {ours:>10.4} {unit}"),
        None => format!("{label:<24} paper: {:>10} {unit}   ours: {ours:>10.4} {unit}", "n/a"),
    }
}

/// Mean of a slice (samples are never empty in the regenerators).
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// The paper's published reference numbers, used purely for side-by-side
/// printing (never for calibration of results).
pub mod paper_ref {
    /// Table III (Kronecker scale 22, 32 threads, per root):
    /// (engine, time s, avg power W, energy J, sleeping energy J, increase).
    pub const TABLE3: [(&str, f64, f64, f64, f64, f64); 4] = [
        ("GAP", 0.01636, 72.38, 1.184, 0.4046, 2.926),
        ("Graph500", 0.01884, 97.17, 1.830, 0.4660, 3.928),
        ("GraphBIG", 1.600, 78.01, 112.213, 39.591, 2.834),
        ("GraphMat", 1.424, 70.12, 111.104, 35.234, 3.153),
    ];

    /// Table I (Graphalytics, 32 threads, seconds): (system, dataset,
    /// [BFS, CDLP, LCC, PR, SSSP, WCC]), None = N/A.
    pub const TABLE1: [(&str, &str, [Option<f64>; 6]); 6] = [
        (
            "GraphBIG",
            "cit-Patents",
            [Some(0.8), Some(11.8), Some(15.5), Some(4.5), None, Some(1.3)],
        ),
        (
            "GraphBIG",
            "dota-league",
            [Some(1.1), Some(3.9), Some(1073.7), Some(2.6), Some(3.0), Some(1.0)],
        ),
        (
            "PowerGraph",
            "cit-Patents",
            [Some(13.8), Some(30.1), Some(23.9), Some(18.8), None, Some(22.1)],
        ),
        (
            "PowerGraph",
            "dota-league",
            [Some(25.6), Some(31.2), Some(458.1), Some(26.7), Some(28.9), Some(22.9)],
        ),
        ("GraphMat", "cit-Patents", [Some(7.5), Some(20.1), Some(9.8), Some(8.1), None, Some(6.6)]),
        (
            "GraphMat",
            "dota-league",
            [Some(2.7), Some(21.2), Some(239.7), Some(6.3), Some(9.4), Some(6.9)],
        ),
    ];

    /// Table II (Graphalytics on Kronecker scale 22, seconds):
    /// (algorithm, GraphMat, GraphBIG, PowerGraph).
    pub const TABLE2: [(&str, f64, f64, f64); 5] = [
        ("CDLP", 45.8, 7.4, 55.6),
        ("PR", 8.9, 4.7, 46.4),
        ("LCC", 401.0, 1802.7, 299.8),
        ("WCC", 7.4, 2.4, 40.5),
        ("BFS", 10.3, 1.8, 43.0),
    ];

    /// Fig. 9 (approximate medians read off the plot): CPU / RAM average
    /// power during BFS, watts.
    pub const FIG9_CPU_W: [(&str, f64); 4] =
        [("GAP", 72.4), ("Graph500", 97.2), ("GraphBIG", 78.0), ("GraphMat", 70.1)];
    /// DRAM power medians.
    pub const FIG9_RAM_W: [(&str, f64); 4] =
        [("GAP", 13.0), ("Graph500", 19.0), ("GraphBIG", 15.0), ("GraphMat", 11.0)];

    /// Fig. 2 construction-time medians (seconds, scale 22, approximate).
    pub const FIG2_CONSTRUCT: [(&str, f64); 3] =
        [("GAP", 1.1), ("Graph500", 3.4), ("GraphMat", 2.4)];

    /// Fig. 4 PageRank iteration counts (approximate bar heights).
    pub const FIG4_ITERS: [(&str, f64); 4] =
        [("GAP", 25.0), ("PowerGraph", 48.0), ("GraphBIG", 48.0), ("GraphMat", 140.0)];
}

/// Builds a Kronecker dataset for regenerators.
pub fn kron_dataset(scale: u32, weighted: bool, seed: u64) -> Dataset {
    Dataset::from_spec(&GraphSpec::Kronecker { scale, edge_factor: 16, weighted }, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_selection() {
        let mut a = BenchArgs {
            full: false,
            scale: None,
            threads: 1,
            roots: 8,
            out_dir: PathBuf::from("x"),
            seed: 1,
        };
        assert_eq!(a.kron_scale(22, 14), 14);
        a.full = true;
        assert_eq!(a.kron_scale(22, 14), 22);
        a.scale = Some(10);
        assert_eq!(a.kron_scale(22, 14), 10);
        assert_eq!(a.dataset_div(64), 10);
    }

    #[test]
    fn shape_row_formats() {
        assert!(shape_row("BFS", Some(0.016), 0.02, "s").contains("0.0160"));
        assert!(shape_row("BFS", None, 0.02, "s").contains("n/a"));
    }

    #[test]
    fn paper_reference_is_self_consistent() {
        // Table III: energy ≈ power x time (the paper's averages of
        // per-root products differ from the product of averages by ~10%).
        for (name, t, w, j, _, inc) in paper_ref::TABLE3 {
            assert!((w * t - j).abs() / j < 0.15, "{name}: {w}*{t} != {j}");
            assert!(inc > 1.0);
        }
    }
}
