//! Pluggable power sensors.
//!
//! §V: "while our current implementation supports measurements based on
//! PAPI's interface to RAPL, which is only available on Intel platforms,
//! the interface is simple and easy to adapt to other platforms ... In
//! particular, fine-grained measurements provided through potentially
//! available custom hardware (WattProf) can be enabled through the same
//! interface." This module is that interface: a [`PowerSensor`] trait with
//! the coarse RAPL-style sensor and a fine-grained WattProf-style sensor
//! that produces a time series of power samples.

use crate::rapl::EnergyReport;
use crate::MachineModel;
use epg_engine_api::Trace;

/// A power-measurement backend.
pub trait PowerSensor {
    /// Human-readable backend name.
    fn name(&self) -> &'static str;
    /// Measures a projected run: total energy and average power.
    fn measure(
        &self,
        model: &MachineModel,
        trace: &Trace,
        rate: f64,
        threads: usize,
    ) -> EnergyReport;
}

/// The RAPL-style sensor: per-run aggregate counters, exactly what the
/// paper reads through PAPI (§IV-D).
#[derive(Clone, Copy, Debug, Default)]
pub struct RaplSensor;

impl PowerSensor for RaplSensor {
    fn name(&self) -> &'static str {
        "RAPL (per-run energy counters)"
    }

    fn measure(
        &self,
        model: &MachineModel,
        trace: &Trace,
        rate: f64,
        threads: usize,
    ) -> EnergyReport {
        model.energy(trace, rate, threads)
    }
}

/// One fine-grained power sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerSample {
    /// Sample timestamp within the run, seconds.
    pub t_s: f64,
    /// Instantaneous CPU power, watts.
    pub cpu_w: f64,
    /// Instantaneous DRAM power, watts.
    pub ram_w: f64,
}

/// The WattProf-style sensor: samples instantaneous power at a fixed rate
/// over the projected execution, exposing *phases* of power draw the
/// aggregate RAPL counters hide (Rashti, Sabin & Norris, NAECON'15).
#[derive(Clone, Copy, Debug)]
pub struct WattProfSensor {
    /// Sampling frequency in Hz.
    pub sample_hz: f64,
}

impl Default for WattProfSensor {
    fn default() -> Self {
        WattProfSensor { sample_hz: 10_000.0 }
    }
}

impl WattProfSensor {
    /// Produces the per-region instantaneous power series for a projected
    /// run: regions are projected one at a time and sampled at
    /// `sample_hz` (at least one sample per region).
    pub fn sample_series(
        &self,
        model: &MachineModel,
        trace: &Trace,
        rate: f64,
        threads: usize,
    ) -> Vec<PowerSample> {
        let mut samples = Vec::new();
        let mut t = 0.0f64;
        let dt = 1.0 / self.sample_hz;
        for record in &trace.records {
            let mut region = Trace::default();
            region.records.push(*record);
            let rep = model.energy(&region, rate, threads);
            if rep.duration_s <= 0.0 {
                continue;
            }
            let count = ((rep.duration_s / dt).ceil() as usize).max(1);
            for k in 0..count {
                samples.push(PowerSample {
                    t_s: t + (k as f64 + 0.5) * rep.duration_s / count as f64,
                    cpu_w: rep.avg_cpu_w,
                    ram_w: rep.avg_ram_w,
                });
            }
            t += rep.duration_s;
        }
        samples
    }
}

impl PowerSensor for WattProfSensor {
    fn name(&self) -> &'static str {
        "WattProf (fine-grained sampling)"
    }

    fn measure(
        &self,
        model: &MachineModel,
        trace: &Trace,
        rate: f64,
        threads: usize,
    ) -> EnergyReport {
        // Integrate the sample series; must agree with RAPL's aggregate.
        let series = self.sample_series(model, trace, rate, threads);
        let total = model.project(trace, rate, threads).total_s;
        if series.is_empty() || total <= 0.0 {
            return EnergyReport::default();
        }
        let dt = total / series.len() as f64;
        let cpu_energy_j: f64 = series.iter().map(|s| s.cpu_w * dt).sum();
        let ram_energy_j: f64 = series.iter().map(|s| s.ram_w * dt).sum();
        EnergyReport {
            duration_s: total,
            cpu_energy_j,
            ram_energy_j,
            avg_cpu_w: cpu_energy_j / total,
            avg_ram_w: ram_energy_j / total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_trace() -> Trace {
        let mut t = Trace::default();
        t.parallel(10_000_000, 100, 1_000); // compute-heavy region
        t.parallel(10_000, 10, 5_000_000_000); // memory-heavy region
        t.serial(100_000, 1_000);
        t
    }

    #[test]
    fn rapl_and_wattprof_agree_on_total_energy() {
        let model = MachineModel::paper_machine();
        let trace = mixed_trace();
        let rapl = RaplSensor.measure(&model, &trace, 1e8, 32);
        let wp = WattProfSensor { sample_hz: 1e6 }.measure(&model, &trace, 1e8, 32);
        assert!(
            (rapl.total_j() - wp.total_j()).abs() / rapl.total_j() < 0.05,
            "rapl {} vs wattprof {}",
            rapl.total_j(),
            wp.total_j()
        );
    }

    #[test]
    fn series_reveals_phase_structure() {
        // The fine-grained series must show distinct power levels for the
        // compute-bound and memory-bound phases — information RAPL's single
        // aggregate number cannot provide.
        let model = MachineModel::paper_machine();
        let trace = mixed_trace();
        let series = WattProfSensor { sample_hz: 1e7 }.sample_series(&model, &trace, 1e8, 32);
        assert!(series.len() >= 3);
        let cpu_min = series.iter().map(|s| s.cpu_w).fold(f64::INFINITY, f64::min);
        let cpu_max = series.iter().map(|s| s.cpu_w).fold(0.0, f64::max);
        assert!(cpu_max - cpu_min > 10.0, "phases indistinct: {cpu_min}..{cpu_max}");
        // Timestamps are monotone.
        assert!(series.windows(2).all(|w| w[1].t_s >= w[0].t_s));
    }

    #[test]
    fn empty_trace_yields_empty_series() {
        let model = MachineModel::paper_machine();
        let series = WattProfSensor::default().sample_series(&model, &Trace::default(), 1e8, 8);
        assert!(series.is_empty());
        let rep = WattProfSensor::default().measure(&model, &Trace::default(), 1e8, 8);
        assert_eq!(rep.total_j(), 0.0);
    }

    #[test]
    fn sensor_names_differ() {
        assert_ne!(RaplSensor.name(), WattProfSensor::default().name());
    }
}
