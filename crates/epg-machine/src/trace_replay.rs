//! Replays structured run telemetry onto the simulated machine.
//!
//! The engines emit a flat [`TraceEvent`] stream (see `epg-trace`): within
//! one kernel iteration the convention is *Region events first, then a
//! `CountersDelta` with region `"iteration"`, then the `Iteration` event
//! that closes the group*. A trailing `CountersDelta` with region
//! `"finalize"` carries end-of-run byte totals. This module regroups that
//! stream into per-iteration slices and projects each slice onto the
//! paper's 72-thread Haswell ([`crate::MachineSpec::haswell_e5_2699_v3`]),
//! turning a single measured run into the per-iteration scaling story the
//! paper tells per whole kernel (Figs. 5-7).

use crate::{MachineModel, Projection};
use epg_engine_api::{Counters, Dir, Trace, TraceEvent};

/// One kernel iteration reassembled from the event stream.
#[derive(Clone, Debug)]
pub struct IterationTrace {
    /// 1-based iteration number as reported by the engine.
    pub iter: u32,
    /// Active vertices at the start of the iteration.
    pub frontier: u64,
    /// Push / pull / hybrid-switch direction of the step.
    pub dir: Dir,
    /// Cost-model regions recorded during the iteration.
    pub trace: Trace,
    /// Counter movement attributed to the iteration (zero if the engine
    /// emitted no delta).
    pub delta: Counters,
}

/// A full run regrouped into iterations.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    /// The per-iteration groups in stream order.
    pub iterations: Vec<IterationTrace>,
    /// Counter movement outside any iteration (the `"finalize"` delta
    /// plus anything emitted after the last `Iteration` event).
    pub finalize: Counters,
    /// Regions recorded outside any iteration (e.g. preprocessing).
    pub leftover: Trace,
}

fn add_delta(into: &mut Counters, ev: &TraceEvent) {
    if let TraceEvent::CountersDelta {
        edges,
        vertices,
        bytes_read,
        bytes_written,
        iterations,
        ..
    } = ev
    {
        into.edges_traversed += edges;
        into.vertices_touched += vertices;
        into.bytes_read += bytes_read;
        into.bytes_written += bytes_written;
        into.iterations += iterations;
    }
}

/// Regroups a flat event stream into per-iteration traces.
///
/// Phase, worker, and allocation events are not part of the iteration
/// structure and are skipped here; unparseable JSONL chatter is already
/// dropped by `epg-trace`'s parser and never reaches this function.
pub fn group_iterations(events: &[TraceEvent]) -> Replay {
    let mut replay = Replay::default();
    let mut trace = Trace::default();
    let mut delta = Counters::default();
    for ev in events {
        match ev {
            TraceEvent::Region { work, span, bytes, parallel } => {
                if *parallel {
                    trace.parallel(*work, *span, *bytes);
                } else {
                    trace.serial(*work, *bytes);
                }
            }
            TraceEvent::CountersDelta { .. } => add_delta(&mut delta, ev),
            TraceEvent::Iteration { iter, frontier, dir } => {
                replay.iterations.push(IterationTrace {
                    iter: *iter,
                    frontier: *frontier,
                    dir: *dir,
                    trace: std::mem::take(&mut trace),
                    delta: std::mem::take(&mut delta),
                });
            }
            // Structural / diagnostic events: not part of any iteration.
            TraceEvent::PhaseStart { .. }
            | TraceEvent::PhaseEnd { .. }
            | TraceEvent::WorkerSpan { .. }
            | TraceEvent::AllocHwm { .. }
            | TraceEvent::TrialOutcome { .. }
            | TraceEvent::Query { .. } => {}
        }
    }
    replay.finalize = delta;
    replay.leftover = trace;
    replay
}

/// Projects each iteration of a replayed run onto `n` threads of the
/// model's machine at the calibrated `rate` (work units/second).
///
/// Because [`MachineModel::project`] is additive over regions, the
/// per-iteration totals sum to the whole-run projection (leftover regions
/// excluded), so this is a lossless decomposition of the paper-style
/// whole-kernel number.
pub fn project_iterations(
    model: &MachineModel,
    replay: &Replay,
    rate: f64,
    n: usize,
) -> Vec<(u32, Projection)> {
    replay.iterations.iter().map(|it| (it.iter, model.project(&it.trace, rate, n))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PhaseStart { phase: "run".into(), at_ns: 0 },
            TraceEvent::AllocHwm { label: "parent".into(), bytes: 800 },
            TraceEvent::Region { work: 1000, span: 10, bytes: 8000, parallel: true },
            TraceEvent::CountersDelta {
                region: "iteration".into(),
                edges: 1000,
                vertices: 90,
                bytes_read: 0,
                bytes_written: 0,
                iterations: 1,
            },
            TraceEvent::Iteration { iter: 1, frontier: 1, dir: Dir::Push },
            TraceEvent::Region { work: 4000, span: 40, bytes: 32000, parallel: true },
            TraceEvent::Region { work: 90, span: 90, bytes: 720, parallel: false },
            TraceEvent::CountersDelta {
                region: "iteration".into(),
                edges: 4000,
                vertices: 10,
                bytes_read: 0,
                bytes_written: 0,
                iterations: 1,
            },
            TraceEvent::Iteration { iter: 2, frontier: 90, dir: Dir::Pull },
            TraceEvent::CountersDelta {
                region: "finalize".into(),
                edges: 0,
                vertices: 0,
                bytes_read: 40_000,
                bytes_written: 800,
                iterations: 0,
            },
            TraceEvent::PhaseEnd { phase: "run".into(), at_ns: 99 },
        ]
    }

    #[test]
    fn groups_follow_the_iteration_closing_convention() {
        let r = group_iterations(&stream());
        assert_eq!(r.iterations.len(), 2);
        assert_eq!(r.iterations[0].iter, 1);
        assert_eq!(r.iterations[0].frontier, 1);
        assert_eq!(r.iterations[0].dir, Dir::Push);
        assert_eq!(r.iterations[0].trace.records.len(), 1);
        assert_eq!(r.iterations[0].delta.edges_traversed, 1000);
        assert_eq!(r.iterations[1].trace.records.len(), 2);
        assert!(!r.iterations[1].trace.records[1].parallel);
        assert_eq!(r.finalize.bytes_read, 40_000);
        assert!(r.leftover.records.is_empty());
    }

    #[test]
    fn per_iteration_projections_sum_to_the_whole_run() {
        let r = group_iterations(&stream());
        let model = MachineModel::paper_machine();
        let rate = 1e6;
        for n in [1usize, 8, 72] {
            let per_iter: f64 =
                project_iterations(&model, &r, rate, n).iter().map(|(_, p)| p.total_s).sum();
            let mut whole = Trace::default();
            for it in &r.iterations {
                for rec in &it.trace.records {
                    if rec.parallel {
                        whole.parallel(rec.work, rec.span, rec.bytes);
                    } else {
                        whole.serial(rec.work, rec.bytes);
                    }
                }
            }
            let total = model.project(&whole, rate, n).total_s;
            assert!((per_iter - total).abs() < 1e-12, "n={n}: {per_iter} vs {total}");
        }
    }

    #[test]
    fn deltas_sum_like_counters() {
        let r = group_iterations(&stream());
        let total: u64 = r.iterations.iter().map(|i| i.delta.edges_traversed).sum();
        assert_eq!(total, 5000);
        // Finalize-only fields stay out of the iteration groups.
        assert!(r.iterations.iter().all(|i| i.delta.bytes_read == 0));
    }
}
