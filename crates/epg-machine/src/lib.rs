//! Simulated target machine and RAPL power model.
//!
//! The paper's experiments ran on a 36-core / 72-thread dual-socket Intel
//! Xeon E5-2699 v3 (Haswell) with 256 GB DDR4 (§III-F), with power and
//! energy read from Intel RAPL through PAPI (§IV-D). Neither that machine
//! nor RAPL MSRs are available here, so this crate substitutes both (see
//! DESIGN.md):
//!
//! - [`MachineSpec`] describes the target (core/SMT topology, memory
//!   bandwidth, power envelope);
//! - [`MachineModel::project`] maps an engine's *measured* execution trace
//!   ([`epg_engine_api::Trace`]) onto `n` threads of the target: per-region
//!   `time = max(compute, span, memory) + barrier(n)`, with SMT yield and
//!   a bandwidth ceiling. The single-thread rate is **calibrated from a
//!   real measured run** ([`MachineModel::calibrate_rate`]), so absolute
//!   scale comes from measurement and only the scaling *shape* comes from
//!   the model;
//! - [`rapl`] integrates CPU and DRAM power over projected regions,
//!   exposing both an ergonomic API and a literal `power_rapl_t`-style
//!   start/end/print interface mirroring the paper's Fig. 10 listing.

#![warn(missing_docs)]
pub mod rapl;
pub mod sensor;
pub mod trace_replay;

use epg_engine_api::Trace;

/// Description of the simulated machine.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads (SMT).
    pub threads: usize,
    /// Throughput contribution of a second hyperthread on a busy core,
    /// relative to a full core (0..1).
    pub smt_yield: f64,
    /// Aggregate memory bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Bandwidth one thread can drive on its own, bytes/second.
    pub per_thread_bandwidth: f64,
    /// Barrier cost at `n` threads: `barrier_base_s * ln(n)` (zero at 1).
    pub barrier_base_s: f64,
    /// CPU package idle power (both sockets), watts. Matches the paper's
    /// sleep(10) baseline of ~25 W package power.
    pub cpu_idle_w: f64,
    /// Maximum additional CPU power at full utilization, watts.
    pub cpu_dyn_w: f64,
    /// DRAM idle power, watts.
    pub ram_idle_w: f64,
    /// Additional DRAM power at full bandwidth, watts.
    pub ram_dyn_w: f64,
}

impl MachineSpec {
    /// The paper's machine: 2× Xeon E5-2699 v3, 256 GB DDR4 (§III-F).
    pub fn haswell_e5_2699_v3() -> MachineSpec {
        MachineSpec {
            name: "2x Intel Xeon E5-2699 v3 (Haswell), 256 GB DDR4",
            cores: 36,
            threads: 72,
            smt_yield: 0.28,
            mem_bandwidth: 60e9,
            per_thread_bandwidth: 9e9,
            barrier_base_s: 4e-6,
            cpu_idle_w: 24.7, // Table III: sleeping power ≈ 0.4046 J / 0.01636 s
            cpu_dyn_w: 120.0,
            ram_idle_w: 9.0,
            ram_dyn_w: 16.0,
        }
    }

    /// Effective compute throughput in "full cores" at `n` threads.
    pub fn effective_threads(&self, n: usize) -> f64 {
        let n = n.min(self.threads);
        if n <= self.cores {
            n as f64
        } else {
            self.cores as f64 + (n - self.cores) as f64 * self.smt_yield
        }
    }

    /// Bandwidth available to `n` threads.
    pub fn bandwidth_at(&self, n: usize) -> f64 {
        (n as f64 * self.per_thread_bandwidth).min(self.mem_bandwidth)
    }

    /// Barrier latency at `n` threads.
    pub fn barrier_s(&self, n: usize) -> f64 {
        if n <= 1 {
            0.0
        } else {
            self.barrier_base_s * (n as f64).ln()
        }
    }
}

/// Per-region projection breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Projection {
    /// Total projected wall time, seconds.
    pub total_s: f64,
    /// Time attributable to compute throughput limits.
    pub compute_s: f64,
    /// Time attributable to the memory-bandwidth ceiling.
    pub memory_s: f64,
    /// Time attributable to barriers/joins.
    pub sync_s: f64,
    /// Time attributable to critical-path (span) floors.
    pub span_s: f64,
}

/// The projection model.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// The simulated machine.
    pub spec: MachineSpec,
}

impl MachineModel {
    /// Creates a model of the paper's machine.
    pub fn paper_machine() -> MachineModel {
        MachineModel { spec: MachineSpec::haswell_e5_2699_v3() }
    }

    /// Calibrates the per-thread work rate (work units/second) from a real
    /// measured single-thread run of the same trace, so that
    /// `project(trace, rate, 1) ≈ measured_seconds`.
    pub fn calibrate_rate(&self, trace: &Trace, measured_seconds: f64) -> f64 {
        assert!(measured_seconds > 0.0, "measured time must be positive");
        let work = trace.total_work().max(1) as f64;
        work / measured_seconds
    }

    /// Projects a trace onto `n` threads at the given per-thread rate.
    pub fn project(&self, trace: &Trace, rate: f64, n: usize) -> Projection {
        assert!(rate > 0.0, "rate must be positive");
        assert!(n >= 1, "need at least one thread");
        let spec = &self.spec;
        let n = n.min(spec.threads);
        let eff = spec.effective_threads(n);
        let bw = spec.bandwidth_at(n);
        let barrier = spec.barrier_s(n);
        let mut p = Projection::default();
        for r in &trace.records {
            let (compute, span_t, sync) = if r.parallel {
                (r.work as f64 / (rate * eff), r.span as f64 / rate, barrier)
            } else {
                (r.work as f64 / rate, r.work as f64 / rate, 0.0)
            };
            let mem = r.bytes as f64 / if r.parallel { bw } else { spec.bandwidth_at(1) };
            let body = compute.max(span_t).max(mem);
            p.total_s += body + sync;
            p.sync_s += sync;
            // Attribute the body to its binding constraint.
            if body <= compute + f64::EPSILON && compute >= span_t && compute >= mem {
                p.compute_s += body;
            } else if mem >= span_t {
                p.memory_s += body;
            } else {
                p.span_s += body;
            }
        }
        p
    }

    /// Speedup curve T1/Tn for the given thread counts.
    pub fn speedup_curve(&self, trace: &Trace, rate: f64, threads: &[usize]) -> Vec<(usize, f64)> {
        let t1 = self.project(trace, rate, 1).total_s;
        threads.iter().map(|&n| (n, t1 / self.project(trace, rate, n).total_s)).collect()
    }

    /// Parallel efficiency T1/(n·Tn) for the given thread counts.
    pub fn efficiency_curve(
        &self,
        trace: &Trace,
        rate: f64,
        threads: &[usize],
    ) -> Vec<(usize, f64)> {
        self.speedup_curve(trace, rate, threads)
            .into_iter()
            .map(|(n, s)| (n, s / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace(regions: usize, work: u64, span: u64, bytes: u64) -> Trace {
        let mut t = Trace::default();
        for _ in 0..regions {
            t.parallel(work, span, bytes);
        }
        t
    }

    #[test]
    fn calibration_roundtrips_at_one_thread() {
        let m = MachineModel::paper_machine();
        let t = toy_trace(10, 1_000_000, 100, 0);
        let rate = m.calibrate_rate(&t, 2.5);
        let p = m.project(&t, rate, 1);
        assert!((p.total_s - 2.5).abs() < 1e-9, "{}", p.total_s);
    }

    #[test]
    fn speedup_monotone_then_saturating() {
        let m = MachineModel::paper_machine();
        let t = toy_trace(20, 10_000_000, 1_000, 0);
        let rate = 1e8;
        let s = m.speedup_curve(&t, rate, &[1, 2, 4, 8, 16, 32, 64, 72]);
        assert!((s[0].1 - 1.0).abs() < 1e-9);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.99, "speedup regressed: {s:?}");
        }
        // Far from linear at 72 threads (the paper's "generally poor
        // scaling" observation): SMT yield + barriers keep it well below.
        let s72 = s.last().unwrap().1;
        assert!(s72 < 60.0, "unrealistically linear: {s72}");
        assert!(s72 > 4.0, "no scaling at all: {s72}");
    }

    #[test]
    fn span_floors_scaling() {
        // One hub vertex owning half the work bounds the speedup near 2.
        let m = MachineModel::paper_machine();
        let mut t = Trace::default();
        t.parallel(1_000_000, 500_000, 0);
        let s = m.speedup_curve(&t, 1e8, &[1, 72]);
        assert!(s[1].1 <= 2.01, "span ignored: {:?}", s);
    }

    #[test]
    fn serial_regions_obey_amdahl() {
        let m = MachineModel::paper_machine();
        let mut t = Trace::default();
        t.parallel(900_000, 10, 0);
        t.serial(100_000, 0); // 10% serial
        let s = m.speedup_curve(&t, 1e8, &[1, 36]);
        // Amdahl bound: 1 / (0.1 + 0.9/36) = 8.0.
        assert!(s[1].1 < 8.1, "beats Amdahl: {:?}", s);
        assert!(s[1].1 > 4.0);
    }

    #[test]
    fn memory_bound_regions_stop_scaling_at_bw_ceiling() {
        let m = MachineModel::paper_machine();
        // Heavy bytes per unit of work.
        let mut t = Trace::default();
        t.parallel(1_000_000, 10, 120_000_000_000);
        let s = m.speedup_curve(&t, 1e9, &[1, 72]);
        // 1 thread: bw 9 GB/s; 72 threads: 60 GB/s -> at most ~6.7x.
        assert!(s[1].1 < 7.0, "{s:?}");
    }

    #[test]
    fn hyperthreads_help_less_than_cores() {
        let spec = MachineSpec::haswell_e5_2699_v3();
        let e36 = spec.effective_threads(36);
        let e72 = spec.effective_threads(72);
        assert_eq!(e36, 36.0);
        assert!(e72 < 48.0 && e72 > 36.0);
        assert_eq!(spec.effective_threads(100), e72); // clamped
    }

    #[test]
    fn barrier_zero_at_one_thread() {
        let spec = MachineSpec::haswell_e5_2699_v3();
        assert_eq!(spec.barrier_s(1), 0.0);
        assert!(spec.barrier_s(2) > 0.0);
        assert!(spec.barrier_s(72) > spec.barrier_s(2));
    }

    #[test]
    fn efficiency_is_speedup_over_n() {
        let m = MachineModel::paper_machine();
        let t = toy_trace(5, 1_000_000, 100, 0);
        let s = m.speedup_curve(&t, 1e8, &[4]);
        let e = m.efficiency_curve(&t, 1e8, &[4]);
        assert!((e[0].1 - s[0].1 / 4.0).abs() < 1e-12);
    }
}
