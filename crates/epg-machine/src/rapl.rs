//! The RAPL simulator.
//!
//! Intel's Running Average Power Limit exposes energy counters for the CPU
//! package and DRAM; the paper reads them through PAPI (§IV-D, Fig. 10).
//! This module integrates a power model over projected execution instead:
//!
//! - CPU power = idle + dynamic × (active cores / cores) × intensity,
//!   where *intensity* is the fraction of region time bound by compute
//!   rather than memory stalls (stalled cores draw less);
//! - DRAM power = idle + dynamic × (achieved bandwidth / peak bandwidth).
//!
//! Because energy = power × time, the paper's own headline observation —
//! "the fastest code is also the most energy efficient" — is preserved by
//! construction, while per-engine power differences emerge from each
//! engine's measured bytes-per-work ratios.

use crate::{MachineModel, MachineSpec};
use epg_engine_api::Trace;

/// Energy/power summary for one run, the unit of Fig. 9 and Table III.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyReport {
    /// Projected duration, seconds.
    pub duration_s: f64,
    /// CPU package energy, joules.
    pub cpu_energy_j: f64,
    /// DRAM energy, joules.
    pub ram_energy_j: f64,
    /// Average CPU power, watts.
    pub avg_cpu_w: f64,
    /// Average DRAM power, watts.
    pub avg_ram_w: f64,
}

impl EnergyReport {
    /// Total energy, joules.
    pub fn total_j(&self) -> f64 {
        self.cpu_energy_j + self.ram_energy_j
    }
}

impl MachineModel {
    /// Integrates the power model over a projected run of `trace` at the
    /// calibrated `rate` on `n` threads.
    pub fn energy(&self, trace: &Trace, rate: f64, n: usize) -> EnergyReport {
        let spec = &self.spec;
        let n = n.max(1).min(spec.threads);
        let eff = spec.effective_threads(n);
        let bw = spec.bandwidth_at(n);
        let barrier = spec.barrier_s(n);
        let util = (eff / spec.cores as f64).min(1.0);
        let mut rep = EnergyReport::default();
        for r in &trace.records {
            let (compute, span_t, sync, region_util) = if r.parallel {
                (r.work as f64 / (rate * eff), r.span as f64 / rate, barrier, util)
            } else {
                (r.work as f64 / rate, r.work as f64 / rate, 0.0, 1.0 / spec.cores as f64)
            };
            let mem = r.bytes as f64 / if r.parallel { bw } else { spec.bandwidth_at(1) };
            let body = compute.max(span_t).max(mem);
            let t = body + sync;
            if t <= 0.0 {
                continue;
            }
            // Fraction of the region actually bound by compute.
            let intensity = if body > 0.0 { (compute.max(span_t) / body).min(1.0) } else { 0.0 };
            let cpu_w = spec.cpu_idle_w + spec.cpu_dyn_w * region_util * intensity;
            let achieved_bw =
                if body > 0.0 { (r.bytes as f64 / body).min(spec.mem_bandwidth) } else { 0.0 };
            let ram_w = spec.ram_idle_w + spec.ram_dyn_w * achieved_bw / spec.mem_bandwidth;
            rep.duration_s += t;
            rep.cpu_energy_j += cpu_w * t;
            rep.ram_energy_j += ram_w * t;
        }
        if rep.duration_s > 0.0 {
            rep.avg_cpu_w = rep.cpu_energy_j / rep.duration_s;
            rep.avg_ram_w = rep.ram_energy_j / rep.duration_s;
        }
        rep
    }

    /// The paper's baseline: power drawn while the machine executes
    /// `sleep(seconds)` — pure idle draw (§IV-D, Fig. 9 "sleep" line).
    pub fn sleep_baseline(&self, seconds: f64) -> EnergyReport {
        let spec = &self.spec;
        EnergyReport {
            duration_s: seconds,
            cpu_energy_j: spec.cpu_idle_w * seconds,
            ram_energy_j: spec.ram_idle_w * seconds,
            avg_cpu_w: spec.cpu_idle_w,
            avg_ram_w: spec.ram_idle_w,
        }
    }
}

/// A literal mirror of the paper's Fig. 10 `power_rapl_t` C API, for code
/// that wants the PAPI-style start/end/print shape. Regions recorded
/// between `start` and `end` are measured when `end` is called.
pub struct PowerRapl<'m> {
    model: &'m MachineModel,
    rate: f64,
    threads: usize,
    active: Option<Trace>,
    last: Option<EnergyReport>,
}

impl<'m> PowerRapl<'m> {
    /// `power_rapl_init`: bind to a machine model, calibrated rate, and
    /// thread count.
    pub fn init(model: &'m MachineModel, rate: f64, threads: usize) -> PowerRapl<'m> {
        PowerRapl { model, rate, threads, active: None, last: None }
    }

    /// `power_rapl_start`: begin a measurement window.
    pub fn start(&mut self) {
        self.active = Some(Trace::default());
    }

    /// Records execution inside the window (the instrumented "region of
    /// code to profile" from Fig. 10).
    pub fn record(&mut self, trace: &Trace) {
        self.active.as_mut().expect("power_rapl_start not called").extend(trace);
    }

    /// `power_rapl_end`: close the window and compute energy.
    pub fn end(&mut self) -> EnergyReport {
        let trace = self.active.take().expect("power_rapl_start not called");
        let rep = self.model.energy(&trace, self.rate, self.threads);
        self.last = Some(rep);
        rep
    }

    /// `power_rapl_print`: render the last measurement like the PAPI
    /// example utilities do.
    pub fn print(&self) -> String {
        match &self.last {
            Some(r) => format!(
                "PACKAGE_ENERGY: {:.3} J (avg {:.2} W)\nDRAM_ENERGY: {:.3} J (avg {:.2} W)\nTIME: {:.6} s",
                r.cpu_energy_j, r.avg_cpu_w, r.ram_energy_j, r.avg_ram_w, r.duration_s
            ),
            None => "no measurement".to_string(),
        }
    }
}

/// Convenience: the full machine spec used in reports.
pub fn paper_spec() -> MachineSpec {
    MachineSpec::haswell_e5_2699_v3()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MachineModel {
        MachineModel::paper_machine()
    }

    fn compute_trace() -> Trace {
        let mut t = Trace::default();
        t.parallel(10_000_000, 100, 1_000); // compute-bound
        t
    }

    fn memory_trace() -> Trace {
        let mut t = Trace::default();
        t.parallel(1_000, 10, 10_000_000_000); // memory-bound
        t
    }

    #[test]
    fn energy_equals_power_times_time() {
        let m = model();
        let r = m.energy(&compute_trace(), 1e8, 32);
        assert!(r.duration_s > 0.0);
        assert!((r.cpu_energy_j - r.avg_cpu_w * r.duration_s).abs() < 1e-9);
        assert!((r.ram_energy_j - r.avg_ram_w * r.duration_s).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_draws_more_cpu_power_than_memory_bound() {
        let m = model();
        let rc = m.energy(&compute_trace(), 1e8, 32);
        let rm = m.energy(&memory_trace(), 1e8, 32);
        assert!(rc.avg_cpu_w > rm.avg_cpu_w, "{} vs {}", rc.avg_cpu_w, rm.avg_cpu_w);
        assert!(rm.avg_ram_w > rc.avg_ram_w, "{} vs {}", rm.avg_ram_w, rc.avg_ram_w);
    }

    #[test]
    fn all_power_between_idle_and_max() {
        let m = model();
        let spec = &m.spec;
        for trace in [compute_trace(), memory_trace()] {
            for n in [1, 8, 32, 72] {
                let r = m.energy(&trace, 1e8, n);
                assert!(r.avg_cpu_w >= spec.cpu_idle_w - 1e-9);
                assert!(r.avg_cpu_w <= spec.cpu_idle_w + spec.cpu_dyn_w + 1e-9);
                assert!(r.avg_ram_w >= spec.ram_idle_w - 1e-9);
                assert!(r.avg_ram_w <= spec.ram_idle_w + spec.ram_dyn_w + 1e-9);
            }
        }
    }

    #[test]
    fn more_threads_more_power_less_time() {
        let m = model();
        let r1 = m.energy(&compute_trace(), 1e8, 1);
        let r32 = m.energy(&compute_trace(), 1e8, 32);
        assert!(r32.avg_cpu_w > r1.avg_cpu_w);
        assert!(r32.duration_s < r1.duration_s);
    }

    #[test]
    fn sleep_baseline_is_idle_power() {
        let m = model();
        let s = m.sleep_baseline(10.0);
        assert_eq!(s.avg_cpu_w, m.spec.cpu_idle_w);
        assert!((s.cpu_energy_j - m.spec.cpu_idle_w * 10.0).abs() < 1e-9);
    }

    #[test]
    fn faster_run_uses_less_energy() {
        // Table III's observation: the fastest code is the most energy
        // efficient. Same trace, more threads -> less total energy here
        // because idle power dominates the budget.
        let m = model();
        let e1 = m.energy(&compute_trace(), 1e8, 1).total_j();
        let e32 = m.energy(&compute_trace(), 1e8, 32).total_j();
        assert!(e32 < e1, "{e32} vs {e1}");
    }

    #[test]
    fn fig10_api_shape() {
        let m = model();
        let mut ps = PowerRapl::init(&m, 1e8, 32);
        ps.start();
        ps.record(&compute_trace());
        let rep = ps.end();
        assert!(rep.total_j() > 0.0);
        let printed = ps.print();
        assert!(printed.contains("PACKAGE_ENERGY"));
        assert!(printed.contains("DRAM_ENERGY"));
    }

    #[test]
    #[should_panic(expected = "power_rapl_start not called")]
    fn end_without_start_panics() {
        let m = model();
        let mut ps = PowerRapl::init(&m, 1e8, 32);
        let _ = ps.end();
    }
}
